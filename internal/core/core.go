// Package core integrates the architecture's layers into the group
// communication service the paper describes: a membership engine and a
// reliable multicast engine wired together so that view changes flush
// unstable traffic (approximate virtual synchrony), plus the failure
// detector the membership engine embeds. One Stack is one node's
// attachment to one process group.
//
// A Stack is a proto.Handler: it runs identically under the
// discrete-event simulator (internal/netsim) and in real time over UDP
// (internal/noderun); the public root package scalamedia wraps the latter.
package core

import (
	"time"

	"scalamedia/internal/bulk"
	"scalamedia/internal/flightrec"
	"scalamedia/internal/hier"
	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/proto"
	"scalamedia/internal/rmcast"
	"scalamedia/internal/stats"
	"scalamedia/internal/wire"
)

// Config parameterizes a Stack.
type Config struct {
	// Group is the process group to participate in.
	Group id.Group
	// Contact is an existing member to join through; id.None bootstraps
	// a new group.
	Contact id.Node
	// Ordering is the multicast delivery discipline. Defaults to FIFO.
	Ordering rmcast.Ordering
	// OrderShards splits total-order sequencing across this many members
	// by stream label; see rmcast.Config.OrderShards. 0 or 1 keeps the
	// classic single sequencer.
	OrderShards int

	// Membership timing (zero values take the layer defaults).
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	FlushTimeout   time.Duration
	JoinRetry      time.Duration
	// JoinBackoffMax and JoinAttempts tune the jittered-exponential join
	// retry; see member.Config.
	JoinBackoffMax time.Duration
	JoinAttempts   int
	// AdvertiseAddr is the transport address this node asks the group to
	// reach it at; see member.Config.AdvertiseAddr.
	AdvertiseAddr string

	// Multicast timing (zero values take the layer defaults).
	ResendAfter    time.Duration
	StabilizeEvery time.Duration
	// Suppression tunes the SRM-style randomized loss-recovery timers;
	// the zero value takes the rmcast defaults.
	Suppression rmcast.Suppression
	// DisableSuppression reverts loss recovery to per-receiver NACK
	// scheduling; see rmcast.Config.DisableSuppression.
	DisableSuppression bool
	// Distance, when non-nil, estimates one-way delay to a peer to seed
	// the suppression timers; see rmcast.Config.Distance.
	Distance func(id.Node) time.Duration

	// FlowWindow bounds this sender's unstable multicast history in
	// messages; a full window makes Multicast return
	// rmcast.ErrBackpressure until stability frees slots. Zero disables
	// flow control (the historical unbounded behaviour). Flow control
	// applies to the flat multicast path only; the AutoHier overlay path
	// bypasses it.
	FlowWindow int
	// FlowWindowBytes additionally bounds the window in payload bytes;
	// zero means no byte bound.
	FlowWindowBytes int
	// SlowAfter is the ack-lag (messages) past which a member is flagged
	// slow; zero derives a default from FlowWindow. See
	// rmcast.Config.SlowAfter.
	SlowAfter int
	// SlowPolicy and SlowGrace select what happens to flagged members:
	// throttle senders to them (default) or evict after the grace budget.
	// See member.Config.
	SlowPolicy member.SlowPolicy
	SlowGrace  time.Duration
	// OnFlowOpen fires when a previously full flow window drains below
	// its bound; see rmcast.Config.OnFlowOpen.
	OnFlowOpen func()
	// OnSlow observes slow-flag transitions: peer, its ack lag, and
	// whether it is now flagged. Called from the event loop.
	OnSlow func(peer id.Node, lag uint64, slow bool)

	// AutoHier routes application multicasts through a self-organizing
	// hierarchical overlay (internal/hier): nodes measure peer RTTs,
	// cluster by latency, elect coordinators and reshape under churn.
	// Membership, view changes and state transfer stay on the flat group;
	// the overlay claims groups Group+1 (intra-cluster), Group+2 (relay
	// set) and Group+3 (RTT probes), which must not be used elsewhere.
	// Delivery becomes FIFO per origin — the hierarchy's guarantee —
	// regardless of Ordering, and the overlay's per-peer distance matrix
	// feeds the flat group's suppression timers when Distance is nil.
	AutoHier bool
	// HierFanOut bounds overlay cluster sizes (and with them every
	// coordinator's re-multicast fan-out); zero takes the hier default.
	HierFanOut int
	// HierForm tunes the overlay formation protocol (zero = defaults).
	HierForm hier.FormConfig

	// OnView observes installed views.
	OnView func(member.View)
	// OnDeliver receives multicast messages.
	OnDeliver func(rmcast.Delivery)
	// OnEvicted fires if this node is removed from the group.
	OnEvicted func()
	// OnJoinFailed fires once when the join attempt cap is exhausted;
	// see member.Config.OnJoinFailed.
	OnJoinFailed func(error)
	// OnPeerAddr receives learned member addresses so the driver can
	// teach the transport peer table; see member.Config.OnPeerAddr.
	OnPeerAddr func(id.Node, string)
	// PrimaryPartition applies the membership majority rule; see
	// member.Config.PrimaryPartition.
	PrimaryPartition bool
	// Snapshot and OnState enable application state transfer to joining
	// members; see member.Config.
	Snapshot func() []byte
	OnState  func(member.View, []byte)

	// Bulk-dissemination geometry (internal/bulk); zero values take the
	// bulk defaults. The bulk engine is always present — it generates no
	// traffic until an object is published or a manifest arrives.
	BulkSymbolSize   int
	BulkDataShards   int
	BulkRepairShards int
	BulkRequestEvery time.Duration
	BulkMaxObjects   int
	// OnObject receives completed bulk objects; OnObjectProgress reports
	// per-generation transfer progress.
	OnObject         func(bulk.Object)
	OnObjectProgress func(bulk.Progress)

	// Metrics, when non-nil, receives live counters from both engines.
	Metrics *stats.Registry
	// MetricsPrefix namespaces the multicast engine's metrics; empty
	// takes the rmcast default ("rmcast.").
	MetricsPrefix string
	// Flight, when non-nil, records protocol events from both engines.
	Flight *flightrec.Recorder
}

// Stack is one node's group communication service.
type Stack struct {
	env    proto.Env
	cfg    Config
	member *member.Engine
	mcast  *rmcast.Engine
	hier   *hier.Engine // nil unless Config.AutoHier
	bulk   *bulk.Engine
}

var _ proto.Handler = (*Stack)(nil)

// NewStack builds and wires the layer engines.
func NewStack(env proto.Env, cfg Config) *Stack {
	s := &Stack{env: env, cfg: cfg}
	// Under AutoHier the overlay's RTT matrix seeds the flat group's
	// suppression timers too; the closure defers to the engine built
	// below (rmcast treats a zero distance as "fall back to defaults").
	dist := cfg.Distance
	if cfg.AutoHier && dist == nil {
		dist = func(p id.Node) time.Duration { return s.hier.PeerDistance(p) }
	}
	// Slow tracking is opt-in: it only runs when some overload knob or
	// observer asks for it, so existing configurations keep their exact
	// behaviour (no extra flight events or counter churn).
	var onSlow func(id.Node, uint64, bool)
	if cfg.FlowWindow > 0 || cfg.SlowAfter > 0 ||
		cfg.SlowPolicy == member.EvictSlow || cfg.OnSlow != nil {
		onSlow = func(peer id.Node, lag uint64, slow bool) {
			s.member.SetSlow(peer, slow)
			if cfg.OnSlow != nil {
				cfg.OnSlow(peer, lag, slow)
			}
		}
	}
	s.mcast = rmcast.New(env, rmcast.Config{
		Group:              cfg.Group,
		Ordering:           cfg.Ordering,
		OrderShards:        cfg.OrderShards,
		ResendAfter:        cfg.ResendAfter,
		StabilizeEvery:     cfg.StabilizeEvery,
		Suppression:        cfg.Suppression,
		DisableSuppression: cfg.DisableSuppression,
		Distance:           dist,
		FlowWindow:         cfg.FlowWindow,
		FlowWindowBytes:    cfg.FlowWindowBytes,
		SlowAfter:          cfg.SlowAfter,
		OnFlowOpen:         cfg.OnFlowOpen,
		OnSlow:             onSlow,
		OnDeliver:          cfg.OnDeliver,
		Metrics:            cfg.Metrics,
		MetricsPrefix:      cfg.MetricsPrefix,
		Flight:             cfg.Flight,
	})
	if cfg.AutoHier {
		h, err := hier.New(env, hier.Config{
			LocalGroup:         cfg.Group + 1,
			WideGroup:          cfg.Group + 2,
			ClockGroup:         cfg.Group + 3,
			AutoHier:           true,
			Members:            []id.Node{env.Self()},
			FanOut:             cfg.HierFanOut,
			Form:               cfg.HierForm,
			Suppression:        cfg.Suppression,
			DisableSuppression: cfg.DisableSuppression,
			Distance:           cfg.Distance,
			ResendAfter:        cfg.ResendAfter,
			StabilizeEvery:     cfg.StabilizeEvery,
			Metrics:            cfg.Metrics,
			Flight:             cfg.Flight,
			OnDeliver: func(d hier.Delivery) {
				if cfg.OnDeliver != nil {
					cfg.OnDeliver(rmcast.Delivery{
						Group:   cfg.Group,
						Sender:  d.Origin,
						Seq:     d.Seq,
						Payload: d.Payload,
					})
				}
			},
		})
		if err != nil {
			// Unreachable: the three derived groups are distinct by
			// construction, the only thing hier.New validates here.
			panic("core: " + err.Error())
		}
		s.hier = h
	}
	// The bulk engine stripes coded symbols over the flat membership; under
	// AutoHier its relayed fan-out follows the overlay tree instead of
	// going wide, so relay traffic stays within a cluster (plus the small
	// coordinator set) exactly like the session's ordered multicasts.
	var relayPlan func() (local, remote []id.Node)
	if cfg.AutoHier {
		relayPlan = func() (local, remote []id.Node) {
			t := s.hier.CurrentTopology()
			ci := t.ClusterOf(env.Self())
			if ci < 0 {
				return nil, nil
			}
			local = append(local, t.Clusters[ci]...)
			for i := range t.Clusters {
				if i == ci {
					continue
				}
				if r := t.RelayOf(i); r != id.None {
					remote = append(remote, r)
				}
			}
			return local, remote
		}
	}
	s.bulk = bulk.New(env, bulk.Config{
		Group:        cfg.Group,
		Distance:     dist,
		SymbolSize:   cfg.BulkSymbolSize,
		DataShards:   cfg.BulkDataShards,
		RepairShards: cfg.BulkRepairShards,
		RequestEvery: cfg.BulkRequestEvery,
		MaxObjects:   cfg.BulkMaxObjects,
		RelayPlan:    relayPlan,
		OnObject:     cfg.OnObject,
		OnProgress:   cfg.OnObjectProgress,
	})
	s.member = member.New(env, member.Config{
		Group:            cfg.Group,
		Metrics:          cfg.Metrics,
		Flight:           cfg.Flight,
		Contact:          cfg.Contact,
		HeartbeatEvery:   cfg.HeartbeatEvery,
		SuspectAfter:     cfg.SuspectAfter,
		FlushTimeout:     cfg.FlushTimeout,
		JoinRetry:        cfg.JoinRetry,
		JoinBackoffMax:   cfg.JoinBackoffMax,
		JoinAttempts:     cfg.JoinAttempts,
		AdvertiseAddr:    cfg.AdvertiseAddr,
		SlowPolicy:       cfg.SlowPolicy,
		SlowGrace:        cfg.SlowGrace,
		PrimaryPartition: cfg.PrimaryPartition,
		Snapshot:         cfg.Snapshot,
		OnState:          cfg.OnState,
		OnJoinFailed:     cfg.OnJoinFailed,
		OnPeerAddr:       cfg.OnPeerAddr,
		StabilityVector:  s.mcast.StabilityVector,
		OnFlush: func(proposed member.View) {
			// Freeze before flushing: nothing sent after the flush can
			// slip into the old view behind the coordinator's
			// flush-convergence gate.
			s.mcast.Freeze()
			s.mcast.Flush(proposed)
		},
		OnView: func(v member.View) {
			s.mcast.SetView(v)
			s.bulk.SetMembers(v.Members)
			if s.hier != nil {
				// The admitted membership is the overlay's universe: the
				// formation leader reshapes the tree around joins and
				// departures as the flat layer admits them.
				s.hier.SetMembers(v.Members)
			}
			if cfg.OnView != nil {
				cfg.OnView(v)
			}
		},
		OnEvicted: func(member.View) {
			if cfg.OnEvicted != nil {
				cfg.OnEvicted()
			}
		},
	})
	return s
}

// Multicast sends payload to the group with the configured ordering —
// through the self-organizing overlay under AutoHier (FIFO per origin),
// through the flat group otherwise.
func (s *Stack) Multicast(payload []byte) error {
	return s.MulticastStream(0, payload)
}

// MulticastStream sends payload labelled with a media stream. Under
// total ordering the label selects the sequencer shard that orders the
// message (see rmcast.Config.OrderShards). The overlay path (AutoHier)
// has no stream notion — delivery there is FIFO per origin regardless —
// so the label is dropped.
func (s *Stack) MulticastStream(stream id.Stream, payload []byte) error {
	if s.hier != nil {
		return s.hier.Multicast(payload)
	}
	return s.mcast.MulticastStream(stream, payload)
}

// Hier exposes the self-organizing overlay engine (nil unless AutoHier).
func (s *Stack) Hier() *hier.Engine { return s.hier }

// Bulk exposes the erasure-coded bulk-dissemination engine.
func (s *Stack) Bulk() *bulk.Engine { return s.bulk }

// View returns the current membership view.
func (s *Stack) View() member.View { return s.member.View() }

// Joining reports whether admission is still pending.
func (s *Stack) Joining() bool { return s.member.Joining() }

// Evicted reports whether this node was removed from the group.
func (s *Stack) Evicted() bool { return s.member.Evicted() }

// Leave announces a voluntary departure.
func (s *Stack) Leave() { s.member.Leave() }

// Counters exposes the multicast protocol counters.
func (s *Stack) Counters() rmcast.Counters { return s.mcast.Counters() }

// HistoryLen exposes the multicast layer's unstable-history size, used by
// the chaos harness to verify stability garbage collection.
func (s *Stack) HistoryLen() int { return s.mcast.HistoryLen() }

// FlowOccupancy exposes the sender's own unstable-history occupancy —
// the quantity Config.FlowWindow bounds.
func (s *Stack) FlowOccupancy() int { return s.mcast.FlowOccupancy() }

// FlowBlocked reports whether the sender's flow window is currently full.
func (s *Stack) FlowBlocked() bool { return s.mcast.FlowBlocked() }

// SlowMembers returns the members this node currently flags as slow.
func (s *Stack) SlowMembers() []id.Node { return s.member.SlowMembers() }

// Member exposes the membership engine (for suspicion queries).
func (s *Stack) Member() *member.Engine { return s.member }

// OnMessage dispatches a datagram: the overlay's three derived groups go
// to the hierarchy, everything else to the flat engines.
func (s *Stack) OnMessage(from id.Node, msg *wire.Message) {
	if s.hier != nil {
		switch msg.Group {
		case s.cfg.Group + 1, s.cfg.Group + 2, s.cfg.Group + 3:
			s.hier.OnMessage(from, msg)
			return
		}
	}
	switch msg.Kind {
	case wire.KindBulkSym, wire.KindBulkReq:
		s.bulk.OnMessage(from, msg)
		return
	}
	s.member.OnMessage(from, msg)
	s.mcast.OnMessage(from, msg)
}

// OnTick drives the engines.
func (s *Stack) OnTick(now time.Time) {
	s.member.OnTick(now)
	s.mcast.OnTick(now)
	s.bulk.OnTick(now)
	if s.hier != nil {
		s.hier.OnTick(now)
	}
}
