package workload

import (
	"math"
	"testing"
	"time"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Exp(10) != b.Exp(10) || a.Uniform(0, 1) != b.Uniform(0, 1) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZeroSeedReplaced(t *testing.T) {
	a, b := New(0), New(1)
	if a.Exp(1) != b.Exp(1) {
		t.Fatal("zero seed not normalized to 1")
	}
}

func TestExpMean(t *testing.T) {
	r := New(3)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp(50)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-50) > 2 {
		t.Fatalf("exp mean = %.2f, want ~50", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(4)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("uniform sample %g out of range", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	var sum, ss float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Normal(100, 15)
		sum += v
		ss += v * v
	}
	mean := sum / n
	std := math.Sqrt(ss/n - mean*mean)
	if math.Abs(mean-100) > 1 || math.Abs(std-15) > 1 {
		t.Fatalf("normal moments = %.2f/%.2f, want 100/15", mean, std)
	}
}

func TestParetoAboveScale(t *testing.T) {
	r := New(6)
	for i := 0; i < 1000; i++ {
		if v := r.Pareto(100, 1.5); v < 100 {
			t.Fatalf("pareto sample %g below scale", v)
		}
	}
}

func TestPayload(t *testing.T) {
	r := New(7)
	p := r.Payload(64)
	if len(p) != 64 {
		t.Fatalf("payload length %d", len(p))
	}
	q := New(7).Payload(64)
	if string(p) != string(q) {
		t.Fatal("payload not deterministic")
	}
	zero := true
	for _, b := range p {
		if b != 0 {
			zero = false
		}
	}
	if zero {
		t.Fatal("payload all zeros")
	}
}

func TestPoissonMonotonic(t *testing.T) {
	p := NewPoisson(8, 10*time.Millisecond, 100*time.Millisecond)
	prev := time.Duration(-1)
	for i := 0; i < 500; i++ {
		at := p.Next()
		if at <= prev {
			t.Fatalf("arrival %d not increasing: %v after %v", i, at, prev)
		}
		if i == 0 && at != 100*time.Millisecond {
			t.Fatalf("first arrival %v, want start offset", at)
		}
		prev = at
	}
}

func TestArrivalsMeanGap(t *testing.T) {
	arr := Arrivals(9, 10*time.Millisecond, 0, 5000)
	if len(arr) != 5000 {
		t.Fatalf("len = %d", len(arr))
	}
	total := arr[len(arr)-1] - arr[0]
	meanGap := total / time.Duration(len(arr)-1)
	if meanGap < 8*time.Millisecond || meanGap > 12*time.Millisecond {
		t.Fatalf("mean gap %v, want ~10ms", meanGap)
	}
}
