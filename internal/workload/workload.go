// Package workload provides the deterministic workload generators used by
// the experiment harness: seeded random distributions, Poisson arrival
// processes and synthetic message payloads. Everything is reproducible
// from a seed, which is what lets EXPERIMENTS.md quote exact measured
// numbers.
package workload

import (
	"math"
	"math/rand"
	"time"
)

// Rand wraps a seeded source with the distributions the experiments use.
// It is not safe for concurrent use; give each generator its own.
type Rand struct {
	rng *rand.Rand
}

// New returns a generator with the given seed (zero is replaced by 1).
func New(seed int64) *Rand {
	if seed == 0 {
		seed = 1
	}
	return &Rand{rng: rand.New(rand.NewSource(seed))}
}

// Uniform returns a sample in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.rng.Float64()
}

// Exp returns an exponential sample with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u) * mean
}

// Normal returns a normal sample with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return r.rng.NormFloat64()*stddev + mean
}

// Pareto returns a bounded Pareto sample with the given scale and shape,
// the classic heavy-tailed size distribution.
func (r *Rand) Pareto(scale, shape float64) float64 {
	u := r.rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return scale / math.Pow(u, 1/shape)
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int { return r.rng.Intn(n) }

// Payload returns a deterministic pseudo-random payload of n bytes.
func (r *Rand) Payload(n int) []byte {
	b := make([]byte, n)
	r.rng.Read(b) //nolint:errcheck // math/rand Read never fails
	return b
}

// Poisson generates Poisson arrival offsets: successive event times with
// exponential gaps of the given mean, starting after start.
type Poisson struct {
	rnd  *Rand
	next time.Duration
	gap  time.Duration
}

// NewPoisson returns an arrival process with the given mean inter-arrival
// gap, beginning at start.
func NewPoisson(seed int64, meanGap, start time.Duration) *Poisson {
	return &Poisson{rnd: New(seed), next: start, gap: meanGap}
}

// Next returns the next arrival offset.
func (p *Poisson) Next() time.Duration {
	at := p.next
	p.next += time.Duration(p.rnd.Exp(float64(p.gap)))
	return at
}

// Arrivals returns the first n arrival offsets of a fresh process.
func Arrivals(seed int64, meanGap, start time.Duration, n int) []time.Duration {
	p := NewPoisson(seed, meanGap, start)
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = p.Next()
	}
	return out
}
