package rmcast

import (
	"fmt"
	"time"

	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/proto"
	"scalamedia/internal/wire"
)

// AckEngine is the positive-acknowledgment baseline the NACK design is
// evaluated against (the T-A2 ablation): each receiver unicasts a
// cumulative ACK to the sender after every delivery progression, and the
// sender retransmits messages unacknowledged within the retransmission
// timeout. The well-known cost is ACK implosion — per multicast the
// sender processes one ACK from every receiver, so sender-side control
// traffic grows linearly with group size even on a loss-free network —
// which is exactly what the ablation measures.
//
// Delivery is per-sender FIFO. AckEngine implements the same Handler
// shape as Engine and is driven the same way.
type AckEngine struct {
	env proto.Env
	cfg Config

	view member.View

	// Sending state.
	nextSend uint64
	unacked  map[uint64]*pendingSend // my messages not yet acked by all

	// Receiving state: per-sender contiguity (reuses peerState).
	peers map[id.Node]*peerState

	counters Counters
}

// pendingSend is one of this sender's messages awaiting full
// acknowledgment.
type pendingSend struct {
	msg    *wire.Message
	acked  map[id.Node]bool
	sentAt time.Time
}

var _ proto.Handler = (*AckEngine)(nil)

// NewAck returns an ACK-based multicast engine with no view. Only the
// FIFO ordering is supported; Config.Ordering is ignored.
func NewAck(env proto.Env, cfg Config) *AckEngine {
	if cfg.ResendAfter <= 0 {
		cfg.ResendAfter = DefaultResendAfter
	}
	return &AckEngine{
		env:     env,
		cfg:     cfg,
		unacked: make(map[uint64]*pendingSend),
		peers:   make(map[id.Node]*peerState),
	}
}

// Counters returns a copy of the protocol event counters.
func (e *AckEngine) Counters() Counters { return e.counters }

// SetView installs a new view, resetting per-view state.
func (e *AckEngine) SetView(v member.View) {
	e.view = v
	e.nextSend = 0
	e.unacked = make(map[uint64]*pendingSend)
	e.peers = make(map[id.Node]*peerState)
}

// Multicast sends payload to the current view and tracks it until every
// member acknowledges.
func (e *AckEngine) Multicast(payload []byte) error {
	if e.view.ID == 0 || !e.view.Contains(e.env.Self()) {
		return ErrNoView
	}
	if len(payload) > wire.MaxBody {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(payload))
	}
	e.nextSend++
	msg := &wire.Message{
		Kind:   wire.KindData,
		Group:  e.cfg.Group,
		View:   e.view.ID,
		Sender: e.env.Self(),
		Seq:    e.nextSend,
		Body:   append([]byte(nil), payload...),
	}
	pend := &pendingSend{
		msg:    msg,
		acked:  map[id.Node]bool{e.env.Self(): true},
		sentAt: e.env.Now(),
	}
	e.unacked[msg.Seq] = pend
	e.counters.Sent++
	for _, m := range e.view.Members {
		if m == e.env.Self() {
			continue
		}
		cp := *msg
		e.env.Send(m, &cp)
	}
	e.receive(msg) // local FIFO delivery
	return nil
}

// OnMessage handles data, retransmissions and acknowledgments.
func (e *AckEngine) OnMessage(from id.Node, msg *wire.Message) {
	if msg.Group != e.cfg.Group || msg.View != e.view.ID || e.view.ID == 0 {
		return
	}
	switch msg.Kind {
	case wire.KindData, wire.KindRetrans:
		if msg.Kind == wire.KindRetrans {
			e.counters.Retransmits++
		}
		before := e.ackFor(msg.Sender)
		e.receive(msg)
		// Cumulative ACK whenever the contiguous prefix advanced (and
		// also for duplicates, so a lost ACK gets repaired).
		if after := e.ackFor(msg.Sender); after != before || msg.Seq <= before {
			e.env.Send(msg.Sender, &wire.Message{
				Kind:   wire.KindAck,
				Group:  e.cfg.Group,
				View:   e.view.ID,
				Sender: msg.Sender,
				Seq:    e.ackFor(msg.Sender),
			})
		}
	case wire.KindAck:
		e.onAck(from, msg.Seq)
	}
}

// ackFor returns the cumulative delivered prefix for a sender.
func (e *AckEngine) ackFor(sender id.Node) uint64 {
	st, ok := e.peers[sender]
	if !ok {
		return 0
	}
	return st.next - 1
}

// receive runs per-sender FIFO contiguity and delivers.
func (e *AckEngine) receive(msg *wire.Message) {
	st, ok := e.peers[msg.Sender]
	if !ok {
		st = &peerState{next: 1, buf: make(map[uint64]*wire.Message)}
		e.peers[msg.Sender] = st
	}
	switch {
	case msg.Seq < st.next:
		e.counters.Duplicates++
	case msg.Seq == st.next:
		e.deliverAck(msg)
		st.next++
		for {
			nxt, ok := st.buf[st.next]
			if !ok {
				break
			}
			delete(st.buf, st.next)
			e.deliverAck(nxt)
			st.next++
		}
	default:
		if _, dup := st.buf[msg.Seq]; dup {
			e.counters.Duplicates++
			return
		}
		st.buf[msg.Seq] = msg
	}
}

func (e *AckEngine) deliverAck(msg *wire.Message) {
	e.counters.Delivered++
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(Delivery{
			Group:   msg.Group,
			Sender:  msg.Sender,
			Seq:     msg.Seq,
			View:    msg.View,
			Payload: msg.Body,
		})
	}
}

// onAck records a receiver's cumulative acknowledgment of our stream.
func (e *AckEngine) onAck(from id.Node, upTo uint64) {
	for seq, pend := range e.unacked {
		if seq > upTo {
			continue
		}
		pend.acked[from] = true
		done := true
		for _, m := range e.view.Members {
			if !pend.acked[m] {
				done = false
				break
			}
		}
		if done {
			delete(e.unacked, seq)
		}
	}
}

// OnTick retransmits timed-out messages to the members that have not
// acknowledged them.
func (e *AckEngine) OnTick(now time.Time) {
	if e.view.ID == 0 {
		return
	}
	for _, pend := range e.unacked {
		if now.Sub(pend.sentAt) < e.cfg.ResendAfter {
			continue
		}
		pend.sentAt = now
		for _, m := range e.view.Members {
			if pend.acked[m] {
				continue
			}
			r := *pend.msg
			r.Kind = wire.KindRetrans
			e.env.Send(m, &r)
			e.counters.NacksServed++
		}
	}
}

// Outstanding returns how many of this sender's messages still await
// full acknowledgment (for tests and GC verification).
func (e *AckEngine) Outstanding() int { return len(e.unacked) }
