package rmcast

import (
	"fmt"
	"testing"
	"time"

	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/netsim"
	"scalamedia/internal/proto"
	"scalamedia/internal/wire"
)

// propRun drives a randomized workload and returns each node's delivery
// log plus the causal obligations recorded at send time.
type propRun struct {
	logs map[id.Node][]msgKey
	// obligations[X] lists messages delivered at X's sender before X was
	// sent: causal delivery requires them before X everywhere.
	obligations map[msgKey][]msgKey
	sent        []msgKey
}

// runProperty executes one randomized scenario.
func runProperty(t *testing.T, ord Ordering, n, msgs int, loss float64, jitter time.Duration, seed int64) propRun {
	t.Helper()
	link := netsim.Link{Delay: time.Millisecond, Jitter: jitter, Loss: loss}
	return runPropertyLink(t, ord, n, msgs, link, seed)
}

// runPropertyLink is runProperty with full control of the link, letting
// scenarios add duplication on top of loss and jitter.
func runPropertyLink(t *testing.T, ord Ordering, n, msgs int, link netsim.Link, seed int64) propRun {
	t.Helper()
	s := netsim.New(netsim.Config{
		Seed:    seed,
		Profile: func(_, _ id.Node) netsim.Link { return link },
	})
	nodes := buildStatic(s, n, ord)

	pr := propRun{
		logs:        make(map[id.Node][]msgKey),
		obligations: make(map[msgKey][]msgKey),
	}
	// Wrap delivery recording.
	for nd, rn := range nodes {
		nd, rn := nd, rn
		rn.eng.cfg.OnDeliver = func(d Delivery) {
			rn.record(d)
			pr.logs[nd] = append(pr.logs[nd], msgKey{d.Sender, d.Seq})
		}
	}
	// Schedule sends round-robin with pseudo-random gaps from the seed.
	gap := 3 * time.Millisecond
	at := 10 * time.Millisecond
	for i := 0; i < msgs; i++ {
		sender := id.Node(i%n + 1)
		sendAt := at
		at += gap + time.Duration((seed+int64(i))%5)*time.Millisecond
		i := i
		s.At(sendAt, func() {
			eng := nodes[sender].eng
			key := msgKey{sender, eng.Counters().Sent + 1}
			// Causal obligation: everything the sender delivered so far.
			pr.obligations[key] = append([]msgKey(nil), pr.logs[sender]...)
			pr.sent = append(pr.sent, key)
			if err := eng.Multicast([]byte{byte(i)}); err != nil {
				t.Errorf("multicast: %v", err)
			}
		})
	}
	s.Run(at + 8*time.Second)
	return pr
}

// checkExactlyOnce verifies validity (everything delivered) and no
// duplication at every node.
func checkExactlyOnce(t *testing.T, pr propRun, n int) {
	t.Helper()
	for nd, log := range pr.logs {
		if len(log) != len(pr.sent) {
			t.Fatalf("node %s delivered %d of %d", nd, len(log), len(pr.sent))
		}
		seen := make(map[msgKey]bool, len(log))
		for _, k := range log {
			if seen[k] {
				t.Fatalf("node %s delivered %v twice", nd, k)
			}
			seen[k] = true
		}
	}
	if len(pr.logs) != n {
		t.Fatalf("only %d nodes logged deliveries", len(pr.logs))
	}
}

// checkFIFO verifies per-sender delivery order at every node.
func checkFIFO(t *testing.T, pr propRun) {
	t.Helper()
	for nd, log := range pr.logs {
		last := make(map[id.Node]uint64)
		for _, k := range log {
			if k.seq <= last[k.sender] {
				t.Fatalf("node %s: FIFO violation for %s: %d after %d",
					nd, k.sender, k.seq, last[k.sender])
			}
			last[k.sender] = k.seq
		}
	}
}

// checkCausal verifies each message's send-time obligations precede it.
func checkCausal(t *testing.T, pr propRun) {
	t.Helper()
	for nd, log := range pr.logs {
		pos := make(map[msgKey]int, len(log))
		for i, k := range log {
			pos[k] = i
		}
		for msg, deps := range pr.obligations {
			mp, ok := pos[msg]
			if !ok {
				continue // validity is checked separately
			}
			for _, dep := range deps {
				dp, ok := pos[dep]
				if !ok || dp > mp {
					t.Fatalf("node %s: causal violation: %v (pos %d) before its dependency %v (pos %d)",
						nd, msg, mp, dep, dp)
				}
			}
		}
	}
}

// checkTotalAgreement verifies all nodes share one delivery sequence.
func checkTotalAgreement(t *testing.T, pr propRun) {
	t.Helper()
	var ref []msgKey
	var refNode id.Node
	for nd, log := range pr.logs {
		if ref == nil {
			ref, refNode = log, nd
			continue
		}
		for i := range ref {
			if i >= len(log) || log[i] != ref[i] {
				t.Fatalf("total order diverges between %s and %s at %d", refNode, nd, i)
			}
		}
	}
}

func TestPropertyExactlyOnceUnderRandomLoss(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 101} {
		seed := seed
		for _, ord := range []Ordering{Unordered, FIFO, Causal, Total} {
			ord := ord
			t.Run(fmt.Sprintf("%s/seed%d", ord, seed), func(t *testing.T) {
				loss := float64(seed%3) * 0.04 // 0, 4, 8 percent
				jitter := time.Duration(seed%4) * 2 * time.Millisecond
				pr := runProperty(t, ord, 4, 40, loss, jitter, seed)
				checkExactlyOnce(t, pr, 4)
			})
		}
	}
}

func TestPropertyFIFOUnderRandomSchedules(t *testing.T) {
	for _, seed := range []int64{3, 11, 47} {
		pr := runProperty(t, FIFO, 5, 50, 0.05, 5*time.Millisecond, seed)
		checkExactlyOnce(t, pr, 5)
		checkFIFO(t, pr)
	}
}

func TestPropertyCausalUnderRandomSchedules(t *testing.T) {
	for _, seed := range []int64{5, 13, 59} {
		pr := runProperty(t, Causal, 4, 40, 0.05, 5*time.Millisecond, seed)
		checkExactlyOnce(t, pr, 4)
		checkFIFO(t, pr) // causal implies per-sender FIFO
		checkCausal(t, pr)
	}
}

func TestPropertyTotalAgreementUnderRandomSchedules(t *testing.T) {
	for _, seed := range []int64{2, 17, 71} {
		pr := runProperty(t, Total, 4, 40, 0.05, 5*time.Millisecond, seed)
		checkExactlyOnce(t, pr, 4)
		checkTotalAgreement(t, pr)
		checkCausal(t, pr) // sequencer order respects send-time causality here
	}
}

// TestPropertyOrderSafetyUnderLossAndDuplication turns on datagram
// duplication alongside loss and jitter: every packet has a 20% chance of
// arriving twice, on top of 8% loss. The strong orderings must shrug both
// off — duplicates discarded, gaps repaired — and still deliver exactly
// once in causal (respectively total) order.
func TestPropertyOrderSafetyUnderLossAndDuplication(t *testing.T) {
	link := netsim.Link{
		Delay:     time.Millisecond,
		Jitter:    4 * time.Millisecond,
		Loss:      0.08,
		Duplicate: 0.2,
	}
	for _, seed := range []int64{9, 31, 77, 131} {
		seed := seed
		t.Run(fmt.Sprintf("causal/seed%d", seed), func(t *testing.T) {
			pr := runPropertyLink(t, Causal, 4, 40, link, seed)
			checkExactlyOnce(t, pr, 4)
			checkFIFO(t, pr)
			checkCausal(t, pr)
		})
		t.Run(fmt.Sprintf("total/seed%d", seed), func(t *testing.T) {
			pr := runPropertyLink(t, Total, 4, 40, link, seed)
			checkExactlyOnce(t, pr, 4)
			checkTotalAgreement(t, pr)
		})
	}
}

// controlRatio mirrors the T3 flat n=16 workload (4 senders, 40 messages
// each, 10ms gaps, 1% loss) and returns control datagrams — everything
// except data and retransmissions — per delivered application message.
func controlRatio(t *testing.T, unbatched bool) float64 {
	t.Helper()
	link := netsim.Link{Delay: time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.01}
	s := netsim.New(netsim.Config{
		Seed:    716,
		Profile: func(_, _ id.Node) netsim.Link { return link },
	})
	const n, senders, per = 16, 4, 40
	var members []id.Node
	for i := 1; i <= n; i++ {
		members = append(members, id.Node(i))
	}
	view := member.NewView(1, members)
	delivered := 0
	engines := make(map[id.Node]*Engine, n)
	for _, m := range members {
		m := m
		s.AddNode(m, func(env proto.Env) proto.Handler {
			eng := New(env, Config{
				Group:           1,
				Ordering:        FIFO,
				DisableBatching: unbatched,
				NoPiggyback:     unbatched,
				OnDeliver:       func(Delivery) { delivered++ },
			})
			eng.SetView(view)
			engines[m] = eng
			return eng
		})
	}
	payload := make([]byte, 64)
	var last time.Duration
	for si := 0; si < senders; si++ {
		sender := members[si]
		at := 10 * time.Millisecond
		for i := 0; i < per; i++ {
			at += 10 * time.Millisecond
			if at > last {
				last = at
			}
			s.At(at, func() {
				if err := engines[sender].Multicast(payload); err != nil {
					t.Errorf("multicast: %v", err)
				}
			})
		}
	}
	s.Run(last + 5*time.Second)
	if want := n * senders * per; delivered != want {
		t.Fatalf("delivered %d of %d", delivered, want)
	}
	st := s.Stats()
	data := st.SentByKind[wire.KindData] + st.SentByKind[wire.KindRetrans]
	return float64(st.TotalSent()-data) / float64(delivered)
}

// TestPropertyControlOverheadBatched pins the control-plane win: with
// piggybacked stability, coalesced NACKs and gossip suppression, the
// ctl/dlv ratio at n=16 must fall strictly below both the unbatched run
// on the identical workload and the 3.48 recorded for that row before
// batching existed (EXPERIMENTS.md T3, PR 1).
func TestPropertyControlOverheadBatched(t *testing.T) {
	batched := controlRatio(t, false)
	unbatched := controlRatio(t, true)
	t.Logf("ctl/dlv at n=16: batched %.2f, unbatched %.2f", batched, unbatched)
	if batched >= unbatched {
		t.Fatalf("batched ctl/dlv %.2f not below unbatched %.2f", batched, unbatched)
	}
	const pr1Figure = 3.48
	if batched >= pr1Figure {
		t.Fatalf("batched ctl/dlv %.2f not below the pre-batching T3 figure %.2f",
			batched, pr1Figure)
	}
}
