package rmcast_test

import (
	"flag"
	"fmt"
	"testing"

	"scalamedia/internal/chaos"
	"scalamedia/internal/rmcast"
)

// -rmcast.chaos.seed replays one failing run; the ordering cycles with
// the seed exactly as in the matrix, so the seed alone pins the run.
var rmcastChaosSeed = flag.Int64("rmcast.chaos.seed", -1, "replay a single rmcast chaos seed")

func rmcastChaosOpts(seed int64) chaos.Options {
	orderings := []rmcast.Ordering{rmcast.FIFO, rmcast.Causal, rmcast.Total, rmcast.Unordered}
	return chaos.Options{
		Seed:     seed,
		Ordering: orderings[seed%4],
		Nodes:    3 + int(seed/4)%3,
	}
}

// TestRmcastChaos runs the ordering-discipline matrix under seeded fault
// schedules and checks the multicast safety invariants: no creation, no
// duplication, per-sender FIFO, causal obligation order, total-order
// prefix agreement, virtual-synchrony agreement across shared view
// transitions, validity and stability GC. Each discipline is exercised
// with loss, duplication bursts, partitions and crash/restart faults.
func TestRmcastChaos(t *testing.T) {
	if *rmcastChaosSeed >= 0 {
		runRmcastChaos(t, *rmcastChaosSeed)
		return
	}
	n := int64(16)
	if testing.Short() {
		n = 4 // one seed per ordering
	}
	for seed := int64(0); seed < n; seed++ {
		seed := 2000 + seed
		opts := rmcastChaosOpts(seed)
		t.Run(fmt.Sprintf("%s/seed=%d", opts.Ordering, seed), func(t *testing.T) {
			t.Parallel()
			runRmcastChaos(t, seed)
		})
	}
}

func runRmcastChaos(t *testing.T, seed int64) {
	tr := chaos.Run(rmcastChaosOpts(seed))
	if v := tr.Violations(); len(v) > 0 {
		t.Error(chaos.FailureReport(
			fmt.Sprintf("go test ./internal/rmcast -run TestRmcastChaos -rmcast.chaos.seed=%d", seed),
			tr.Schedule, v, tr.Flight))
	}
}
