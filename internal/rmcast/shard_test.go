package rmcast

import (
	"fmt"
	"testing"
	"time"

	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/netsim"
	"scalamedia/internal/proto"
)

// buildSharded creates n engines sharing a static view with total
// ordering split over the given number of sequencer shards.
func buildSharded(s *netsim.Sim, n, shards int) map[id.Node]*rmNode {
	var members []id.Node
	for i := 1; i <= n; i++ {
		members = append(members, id.Node(i))
	}
	view := member.NewView(1, members)
	nodes := make(map[id.Node]*rmNode, n)
	for _, m := range members {
		m := m
		s.AddNode(m, func(env proto.Env) proto.Handler {
			rn := &rmNode{env: env}
			rn.eng = New(env, Config{
				Group:       1,
				Ordering:    Total,
				OrderShards: shards,
				OnDeliver:   func(d Delivery) { rn.record(d) },
			})
			rn.eng.SetView(view)
			nodes[m] = rn
			return rn.eng
		})
	}
	return nodes
}

// TestShardedTotalOrderDeterministic is the seeded interleaving property
// test: several senders spraying several streams over a jittery lossy
// network, with the streams hashing to distinct sequencer shards. Every
// member must deliver the identical global sequence — the coordinator's
// merge stream is the only thing that fixes the cross-shard interleaving,
// so any nondeterminism in it shows up as divergent delivery orders.
func TestShardedTotalOrderDeterministic(t *testing.T) {
	for _, seed := range []int64{18, 41, 97} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const (
				n       = 5
				shards  = 4
				msgs    = 60
				streams = 4
			)
			s := netsim.New(netsim.Config{
				Seed:    seed,
				Profile: netsim.LANProfile(time.Millisecond, 10*time.Millisecond, 0.05),
			})
			nodes := buildSharded(s, n, shards)
			for i := 0; i < msgs; i++ {
				i := i
				sender := id.Node(i%n + 1)
				stream := id.Stream(i % streams)
				s.At(time.Duration(10+i*2)*time.Millisecond, func() {
					nodes[sender].eng.MulticastStream(stream, []byte{byte(i)})
				})
			}
			s.Run(15 * time.Second)
			want := nodes[1].got
			if len(want) != msgs {
				t.Fatalf("node 1 delivered %d of %d", len(want), msgs)
			}
			for m, rn := range nodes {
				if len(rn.got) != msgs {
					t.Fatalf("node %s delivered %d of %d", m, len(rn.got), msgs)
				}
				for i := range want {
					a, b := want[i], rn.got[i]
					if a.Sender != b.Sender || a.Seq != b.Seq || a.Stream != b.Stream {
						t.Fatalf("node %s delivery %d = %s:%d s%d, node 1 has %s:%d s%d",
							m, i, b.Sender, b.Seq, b.Stream, a.Sender, a.Seq, a.Stream)
					}
				}
			}
			// The workload must actually exercise more than one sequencer:
			// with 4 streams and 4 shards, several members assign slots.
			sequencers := 0
			for _, rn := range nodes {
				if rn.eng.Counters().OrdersSent > 0 {
					sequencers++
				}
			}
			if sequencers < 2 {
				t.Fatalf("only %d members sequenced; sharding not exercised", sequencers)
			}
		})
	}
}

// TestShardedStreamOrderWithinStream checks the per-stream guarantee:
// within one stream each sender's messages deliver in seq order, and the
// stream label survives to Delivery.
func TestShardedStreamOrderWithinStream(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 23})
	nodes := buildSharded(s, 4, 2)
	for i := 0; i < 20; i++ {
		i := i
		s.At(time.Duration(5+i*3)*time.Millisecond, func() {
			nodes[2].eng.MulticastStream(id.Stream(i%2), []byte{byte(i)})
		})
	}
	s.Run(10 * time.Second)
	for m, rn := range nodes {
		if len(rn.got) != 20 {
			t.Fatalf("node %s delivered %d of 20", m, len(rn.got))
		}
		lastSeq := map[id.Stream]uint64{}
		for _, d := range rn.got {
			if d.Seq <= lastSeq[d.Stream] {
				t.Fatalf("node %s stream %s: seq %d after %d", m, d.Stream, d.Seq, lastSeq[d.Stream])
			}
			lastSeq[d.Stream] = d.Seq
		}
		if len(lastSeq) != 2 {
			t.Fatalf("node %s saw %d streams, want 2", m, len(lastSeq))
		}
	}
}

// TestShardedLostRangeRecovered cuts a shard's sequencer (and the merge
// coordinator) off from half the group mid-traffic; after healing, the
// range re-announcement path must let the isolated side catch up to the
// identical global order.
func TestShardedLostRangeRecovered(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 29})
	nodes := buildSharded(s, 4, 2)
	// Stream 1 hashes to shard 1, sequenced by member 2; member 1
	// coordinates shard 0 and the merge stream.
	s.At(5*time.Millisecond, func() {
		nodes[3].eng.MulticastStream(1, []byte("a"))
		nodes[3].eng.MulticastStream(2, []byte("b"))
	})
	// Partition after the decisions had a moment to reach {1,2} but with
	// ongoing traffic landing while {3,4} are isolated.
	s.At(60*time.Millisecond, func() {
		s.Partition([]id.Node{1, 2}, []id.Node{3, 4})
		nodes[1].eng.MulticastStream(1, []byte("c"))
	})
	s.At(400*time.Millisecond, func() { s.Heal() })
	s.Run(8 * time.Second)
	want := nodes[1].got
	if len(want) != 3 {
		t.Fatalf("node 1 delivered %d of 3", len(want))
	}
	for m, rn := range nodes {
		if len(rn.got) != 3 {
			t.Fatalf("node %s delivered %d of 3", m, len(rn.got))
		}
		for i := range want {
			if rn.got[i].Sender != want[i].Sender || rn.got[i].Seq != want[i].Seq {
				t.Fatalf("node %s order differs at %d", m, i)
			}
		}
	}
}

// TestOrderShardsClamped checks the config guard rails: sharding is
// forced off for non-total orderings and under the legacy unbatched wire
// protocol, which has no shard field.
func TestOrderShardsClamped(t *testing.T) {
	s := netsim.New(netsim.Config{})
	var fifo, legacy, capped *Engine
	s.AddNode(1, func(env proto.Env) proto.Handler {
		fifo = New(env, Config{Group: 1, Ordering: FIFO, OrderShards: 8})
		legacy = New(env, Config{Group: 2, Ordering: Total, OrderShards: 8, DisableBatching: true})
		capped = New(env, Config{Group: 3, Ordering: Total, OrderShards: 1000})
		return fifo
	})
	if fifo.nshards != 1 || legacy.nshards != 1 {
		t.Fatalf("nshards = %d/%d, want 1/1", fifo.nshards, legacy.nshards)
	}
	if capped.nshards != 256 {
		t.Fatalf("capped nshards = %d, want 256", capped.nshards)
	}
}
