package rmcast

import (
	"errors"
	"testing"
	"time"

	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/netsim"
	"scalamedia/internal/proto"
)

// buildFlow creates n engines sharing a static view, with the config
// adjusted by mut before construction — the flow-control variant of
// buildStatic.
func buildFlow(s *netsim.Sim, n int, mut func(*Config)) map[id.Node]*rmNode {
	var members []id.Node
	for i := 1; i <= n; i++ {
		members = append(members, id.Node(i))
	}
	view := member.NewView(1, members)
	nodes := make(map[id.Node]*rmNode, n)
	for _, m := range members {
		m := m
		s.AddNode(m, func(env proto.Env) proto.Handler {
			rn := &rmNode{env: env}
			cfg := Config{
				Group:     1,
				Ordering:  FIFO,
				OnDeliver: func(d Delivery) { rn.record(d) },
			}
			if mut != nil {
				mut(&cfg)
			}
			rn.eng = New(env, cfg)
			rn.eng.SetView(view)
			nodes[m] = rn
			return rn.eng
		})
	}
	return nodes
}

// TestFlowWindowBackpressure pins the stability-window contract: with a
// receiver stalled, a sender accepts exactly FlowWindow multicasts, then
// refuses with ErrBackpressure without growing its history; when the
// receiver resumes and stability catches up, OnFlowOpen fires and sends
// flow again.
func TestFlowWindowBackpressure(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 3})
	const window = 4
	opened := 0
	nodes := buildFlow(s, 2, func(c *Config) {
		c.FlowWindow = window
		c.OnFlowOpen = func() { opened++ }
	})
	var errs []error
	s.At(10*time.Millisecond, func() {
		s.Stall(2)
		for i := 0; i < window+3; i++ {
			errs = append(errs, nodes[1].eng.Multicast([]byte{byte(i)}))
		}
		if got := nodes[1].eng.FlowOccupancy(); got != window {
			t.Errorf("occupancy while blocked = %d, want %d", got, window)
		}
		if !nodes[1].eng.FlowBlocked() {
			t.Error("FlowBlocked() = false with the window full")
		}
	})
	s.At(500*time.Millisecond, func() { s.Resume(2) })
	var lateErr error
	s.At(2*time.Second, func() { lateErr = nodes[1].eng.Multicast([]byte("late")) })
	s.Run(3 * time.Second)

	for i, err := range errs {
		if i < window && err != nil {
			t.Errorf("send %d: %v, want accepted", i, err)
		}
		if i >= window && !errors.Is(err, ErrBackpressure) {
			t.Errorf("send %d: %v, want ErrBackpressure", i, err)
		}
	}
	if got := nodes[1].eng.Counters().FlowRejected; got != 3 {
		t.Errorf("FlowRejected = %d, want 3", got)
	}
	if opened == 0 {
		t.Error("OnFlowOpen never fired after the receiver resumed")
	}
	if lateErr != nil {
		t.Errorf("post-drain send: %v, want accepted", lateErr)
	}
	if nodes[1].eng.FlowBlocked() {
		t.Error("still blocked after drain")
	}
	// The stalled receiver must end with every accepted message, none of
	// the rejected ones: window accepts + the post-drain send.
	if got := len(nodes[2].got); got != window+1 {
		t.Errorf("receiver delivered %d, want %d", got, window+1)
	}
}

// TestFlowWindowBytes pins the byte-budget form of the window: small
// messages stay under the message bound but the byte bound still
// backpressures.
func TestFlowWindowBytes(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 4})
	nodes := buildFlow(s, 2, func(c *Config) {
		c.FlowWindow = 100
		c.FlowWindowBytes = 64
	})
	var errs []error
	s.At(10*time.Millisecond, func() {
		s.Stall(2)
		for i := 0; i < 4; i++ {
			errs = append(errs, nodes[1].eng.Multicast(make([]byte, 30)))
		}
	})
	s.Run(100 * time.Millisecond)
	accepted := 0
	for _, err := range errs {
		if err == nil {
			accepted++
		} else if !errors.Is(err, ErrBackpressure) {
			t.Fatalf("unexpected error %v", err)
		}
	}
	// 30-byte payloads against a 64-byte budget: two fit, the third would
	// exceed it and is refused up front.
	if accepted != 2 {
		t.Fatalf("accepted %d sends, want 2 (byte budget 64, 30B each)", accepted)
	}
}

// TestFlowWindowViewChange pins the reset semantics: a window wedged by a
// stalled member reopens when a view change removes that member, because
// the surviving members' acks are what stability now needs.
func TestFlowWindowViewChange(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 5})
	const window = 3
	nodes := buildFlow(s, 3, func(c *Config) { c.FlowWindow = window })
	s.At(10*time.Millisecond, func() {
		s.Stall(3)
		for i := 0; i < window; i++ {
			if err := nodes[1].eng.Multicast([]byte{byte(i)}); err != nil {
				t.Errorf("fill send %d: %v", i, err)
			}
		}
		if err := nodes[1].eng.Multicast([]byte("x")); !errors.Is(err, ErrBackpressure) {
			t.Errorf("overflow send: %v, want ErrBackpressure", err)
		}
	})
	// The membership layer would evict n3 and install a two-member view on
	// both survivors; here the test drives the installs directly.
	s.At(300*time.Millisecond, func() {
		v := member.NewView(2, []id.Node{1, 2})
		nodes[1].eng.SetView(v)
		nodes[2].eng.SetView(v)
	})
	var lateErr error
	s.At(1500*time.Millisecond, func() { lateErr = nodes[1].eng.Multicast([]byte("after")) })
	s.Run(3 * time.Second)
	if lateErr != nil {
		t.Fatalf("send after eviction view: %v, want accepted (window must reopen)", lateErr)
	}
	if nodes[1].eng.FlowBlocked() {
		t.Fatal("window still blocked after the stalled member left the view")
	}
}

// TestSlowFlagHysteresis pins the slow-member detector: a stalled
// receiver is flagged once its gossiped ack vector lags SlowAfter behind,
// stays flagged while it hovers, and is cleared only after it catches
// back up past the hysteresis band.
func TestSlowFlagHysteresis(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 6})
	type transition struct {
		peer id.Node
		slow bool
	}
	var log []transition
	nodes := buildFlow(s, 2, func(c *Config) {
		c.SlowAfter = 4
		c.OnSlow = func(peer id.Node, lag uint64, slow bool) {
			log = append(log, transition{peer: peer, slow: slow})
		}
	})
	s.At(10*time.Millisecond, func() {
		s.Stall(2)
		for i := 0; i < 8; i++ {
			if err := nodes[1].eng.Multicast([]byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	s.At(time.Second, func() {
		if got := nodes[1].eng.SlowPeers(); len(got) != 1 || got[0] != 2 {
			t.Errorf("SlowPeers() = %v while n2 is stalled, want [2]", got)
		}
		s.Resume(2)
	})
	s.Run(3 * time.Second)
	if len(log) < 2 {
		t.Fatalf("transitions = %v, want flag then clear", log)
	}
	if first := log[0]; first.peer != 2 || !first.slow {
		t.Fatalf("first transition = %+v, want n2 flagged slow", first)
	}
	if last := log[len(log)-1]; last.peer != 2 || last.slow {
		t.Fatalf("last transition = %+v, want n2 cleared", last)
	}
	if got := nodes[1].eng.SlowPeers(); len(got) != 0 {
		t.Fatalf("SlowPeers() = %v after catch-up, want empty", got)
	}
}
