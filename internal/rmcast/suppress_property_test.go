package rmcast

import (
	"fmt"
	"math"
	"testing"
	"time"

	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/netsim"
	"scalamedia/internal/proto"
	"scalamedia/internal/wire"
)

// suppressRun drives one n-member FIFO group over a lossy, duplicating,
// reordering link with correlated loss domains and returns the recovery
// request count (request events, one per multicast — see Counters) plus
// the lost-datagram count, after verifying exactly-once delivery
// everywhere.
func suppressRun(t *testing.T, n, domains int, suppress bool, seed int64) (requests, lost uint64) {
	t.Helper()
	link := netsim.Link{
		Delay:     time.Millisecond,
		Jitter:    4 * time.Millisecond, // reorders datagrams freely
		Loss:      0.05,
		Duplicate: 0.10,
	}
	s := netsim.New(netsim.Config{
		Seed:    seed,
		Profile: func(_, _ id.Node) netsim.Link { return link },
	})
	s.SetLossDomains(func(nd id.Node) int { return int(nd) % domains })

	var members []id.Node
	for i := 1; i <= n; i++ {
		members = append(members, id.Node(i))
	}
	view := member.NewView(1, members)

	logs := make(map[id.Node]map[msgKey]int, n)
	engines := make(map[id.Node]*Engine, n)
	for _, m := range members {
		m := m
		logs[m] = make(map[msgKey]int)
		s.AddNode(m, func(env proto.Env) proto.Handler {
			eng := New(env, Config{
				Group:              1,
				Ordering:           FIFO,
				DisableSuppression: !suppress,
				OnDeliver:          func(d Delivery) { logs[m][msgKey{d.Sender, d.Seq}]++ },
			})
			eng.SetView(view)
			engines[m] = eng
			return eng
		})
	}

	const senders, per = 4, 25
	payload := make([]byte, 64)
	var last time.Duration
	for si := 0; si < senders; si++ {
		sender := members[si]
		at := 10 * time.Millisecond
		for i := 0; i < per; i++ {
			at += 10 * time.Millisecond
			if at > last {
				last = at
			}
			s.At(at, func() {
				if err := engines[sender].Multicast(payload); err != nil {
					t.Errorf("multicast: %v", err)
				}
			})
		}
	}
	s.Run(last + 5*time.Second)

	for nd, log := range logs {
		if len(log) != senders*per {
			t.Fatalf("suppress=%v seed %d: node %s delivered %d of %d messages",
				suppress, seed, nd, len(log), senders*per)
		}
		for k, c := range log {
			if c != 1 {
				t.Fatalf("suppress=%v seed %d: node %s delivered %v %d times",
					suppress, seed, nd, k, c)
			}
		}
	}
	for _, eng := range engines {
		requests += eng.Counters().NacksSent
	}
	return requests, s.Stats().DroppedByKind[wire.KindData]
}

// TestPropertySuppressedRecoveryScales is the scalable-recovery property:
// under random correlated loss, duplication and reordering, both recovery
// schemes converge to exactly-once delivery, but the number of recovery
// requests per lost multicast differs asymptotically. Each loss event
// gaps one whole domain (n/domains receivers), so per-receiver NACKs cost
// ~domain-size requests per event, while randomized suppression must stay
// within O(log n) — measured here against the flat baseline in the same
// run, same seed, same loss pattern.
func TestPropertySuppressedRecoveryScales(t *testing.T) {
	const n, domains = 64, 8 // 8-receiver loss domains
	for _, seed := range []int64{19, 83} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			flatReq, flatLost := suppressRun(t, n, domains, false, seed)
			supReq, supLost := suppressRun(t, n, domains, true, seed)
			if flatLost == 0 || supLost == 0 {
				t.Fatal("no losses: the property measured nothing")
			}
			domainSize := float64(n / domains)
			logN := math.Log2(float64(n))
			// Loss events ≈ lost datagrams / receivers per domain.
			flatPerEvent := float64(flatReq) / (float64(flatLost) / domainSize)
			supPerEvent := float64(supReq) / (float64(supLost) / domainSize)
			t.Logf("flat: %d requests / %d lost (%.1f per loss event); suppressed: %d / %d (%.1f per loss event)",
				flatReq, flatLost, flatPerEvent, supReq, supLost, supPerEvent)
			if supPerEvent > logN {
				t.Errorf("suppressed requests per loss event %.2f exceed log2(n)=%.1f",
					supPerEvent, logN)
			}
			// The bound must be meaningful: the flat baseline on the same
			// run sits above it, scaling with domain size instead.
			if flatPerEvent <= logN {
				t.Errorf("flat baseline %.2f requests per loss event did not exceed log2(n)=%.1f — workload too tame to discriminate",
					flatPerEvent, logN)
			}
			if supReq*2 >= flatReq {
				t.Errorf("suppressed total requests %d not under half the flat baseline %d",
					supReq, flatReq)
			}
		})
	}
}
