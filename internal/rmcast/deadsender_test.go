package rmcast

import (
	"fmt"
	"testing"
	"time"

	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/netsim"
	"scalamedia/internal/proto"
)

// deadSenderRun opens a gap that can never be repaired: the sender
// multicasts seq 1 while partitioned away from everyone, heals, multicasts
// seq 2 (exposing the gap at every receiver), and then crashes for good.
// It returns the total recovery requests issued across the surviving
// receivers over ~30 virtual seconds of futile retry.
func deadSenderRun(t *testing.T, suppress bool) uint64 {
	t.Helper()
	const n = 4
	link := netsim.Link{Delay: time.Millisecond}
	s := netsim.New(netsim.Config{
		Seed:    42,
		Profile: func(_, _ id.Node) netsim.Link { return link },
	})

	var members []id.Node
	for i := 1; i <= n; i++ {
		members = append(members, id.Node(i))
	}
	view := member.NewView(1, members)
	engines := make(map[id.Node]*Engine, n)
	for _, m := range members {
		m := m
		s.AddNode(m, func(env proto.Env) proto.Handler {
			eng := New(env, Config{
				Group:              1,
				Ordering:           FIFO,
				DisableSuppression: !suppress,
			})
			eng.SetView(view)
			engines[m] = eng
			return eng
		})
	}

	sender := members[0]
	s.At(5*time.Millisecond, func() {
		s.Partition([]id.Node{sender}) // seq 1 reaches nobody
	})
	s.At(10*time.Millisecond, func() { _ = engines[sender].Multicast([]byte{1}) })
	s.At(20*time.Millisecond, func() { s.Heal() })
	s.At(30*time.Millisecond, func() { _ = engines[sender].Multicast([]byte{2}) })
	// Crash right behind seq 2's 1ms propagation: the gap is exposed at
	// every receiver, but any request (earliest tick ≥ 31ms, so arrival
	// ≥ 32ms) finds the sender already dead.
	s.At(32*time.Millisecond, func() { s.Crash(sender) })

	s.Run(30 * time.Second)

	var requests uint64
	for m, eng := range engines {
		if m == sender {
			continue
		}
		requests += eng.Counters().NacksSent
	}
	return requests
}

// TestDeadSenderBoundedNacks pins the exponential request backoff: a gap
// whose only holder has crashed must not turn into a fixed-interval NACK
// drone. At the 40ms base timer a non-backed-off receiver would fire ~750
// requests over 30s; capped exponential backoff (2s cap) allows at most
// ~20 per receiver. The bound covers both recovery schemes.
func TestDeadSenderBoundedNacks(t *testing.T) {
	for _, suppress := range []bool{false, true} {
		suppress := suppress
		t.Run(fmt.Sprintf("suppress=%v", suppress), func(t *testing.T) {
			requests := deadSenderRun(t, suppress)
			if requests == 0 {
				t.Fatal("no recovery requests: the gap was never detected")
			}
			// 3 surviving receivers; in the suppressed scheme requests are
			// shared multicasts so the total should be lower still.
			const perReceiverCap = 40
			if limit := uint64(3 * perReceiverCap); requests > limit {
				t.Errorf("%d recovery requests over 30s exceed the backoff bound %d",
					requests, limit)
			}
			t.Logf("suppress=%v: %d recovery requests over 30s", suppress, requests)
		})
	}
}
