package rmcast

import (
	"sort"
	"time"

	"scalamedia/internal/flightrec"
	"scalamedia/internal/id"
	"scalamedia/internal/wire"
)

// SRM-style scalable loss recovery (Floyd et al.), adapted to the
// tick-driven engine:
//
//   - Requests are multicast. On detecting a gap a receiver arms a timer
//     drawn from uniform(C1·d, (C1+C2)·d), d its estimated distance to
//     the sender. When the timer fires it multicasts one KindRepairReq
//     for the whole missing range; any member that hears an equivalent
//     request first suppresses its own (re-arming with exponential
//     backoff), so per loss the group sends O(1) expected requests
//     instead of one per gapped receiver.
//   - Repairs are multicast and any holder may answer. A member holding
//     requested data arms a repair timer drawn from uniform(D1·d',
//     (D1+D2)·d'), d' its distance to the requester, and cancels it if
//     the repair is heard first. Holder candidacy is sampled per request
//     attempt so large groups don't race hundreds of timers, and the
//     original sender always answers (damped), keeping recovery live
//     even when the sample misses every holder.
//   - Duplicate-repair damping: a served (sender, seq) is not re-served
//     by the same member within the damping window, absorbing request
//     bursts that crossed on the wire.
//
// Requests and repairs count as protocol events (NacksSent, NacksServed)
// once per multicast, matching the IP-multicast cost model of the paper
// this reconstruction targets: under the simulator's unicast fan-out a
// single multicast expands to view-size datagrams, which would make
// datagram counts meaningless for comparing recovery schemes.

// Default suppression tuning; see Suppression.
const (
	DefaultSuppressC1     = 1.0
	DefaultSuppressC2     = 6.0
	DefaultRepairD1       = 1.0
	DefaultRepairD2       = 6.0
	DefaultPeerDistance   = 5 * time.Millisecond
	DefaultRepairSample   = 8
	DefaultNackBackoffCap = 2 * time.Second
)

// maxBackoffShift bounds the exponential request backoff exponent; the
// cap duration is reached long before, this only guards the shift.
const maxBackoffShift = 16

// Suppression tunes the scalable loss recovery path. The zero value of
// every field selects its default.
type Suppression struct {
	// C1 and C2 scale the request timer: a receiver that detects a gap
	// requests repair after uniform(C1·d, (C1+C2)·d), where d is the
	// estimated one-way distance to the sender. A larger C2 spreads
	// timers wider, suppressing more duplicate requests at the cost of
	// recovery latency.
	C1, C2 float64
	// D1 and D2 scale the repair timer the same way, over the distance
	// to the requester.
	D1, D2 float64
	// DefaultDistance is the distance estimate used when Config.Distance
	// is nil or returns zero.
	DefaultDistance time.Duration
	// RepairSample bounds how many members (besides the original sender,
	// which always answers) arm repair timers for one request attempt.
	RepairSample int
	// Damp is how long a member refuses to re-serve a (sender, seq) it
	// just served or heard served. Defaults to 4·DefaultDistance.
	Damp time.Duration
	// BackoffCap bounds the exponential re-request interval, and equally
	// the legacy unicast re-NACK interval (see Config.DisableSuppression).
	BackoffCap time.Duration
}

// withDefaults fills zero fields.
func (s Suppression) withDefaults() Suppression {
	if s.C1 <= 0 {
		s.C1 = DefaultSuppressC1
	}
	if s.C2 <= 0 {
		s.C2 = DefaultSuppressC2
	}
	if s.D1 <= 0 {
		s.D1 = DefaultRepairD1
	}
	if s.D2 <= 0 {
		s.D2 = DefaultRepairD2
	}
	if s.DefaultDistance <= 0 {
		s.DefaultDistance = DefaultPeerDistance
	}
	if s.RepairSample <= 0 {
		s.RepairSample = DefaultRepairSample
	}
	if s.Damp <= 0 {
		s.Damp = 4 * s.DefaultDistance
	}
	if s.BackoffCap <= 0 {
		s.BackoffCap = DefaultNackBackoffCap
	}
	return s
}

// repairJob is one armed repair timer: this member intends to multicast
// repairs for sender's range [from, to] at the scheduled instant unless
// it hears the repair first.
type repairJob struct {
	at       time.Time
	from, to uint64
}

// distance estimates the one-way delay to a peer for timer scaling.
func (e *Engine) distance(n id.Node) time.Duration {
	if e.cfg.Distance != nil {
		if d := e.cfg.Distance(n); d > 0 {
			return d
		}
	}
	return e.sup.DefaultDistance
}

// backoffStretch caps and applies an exponential backoff shift.
func (e *Engine) backoffStretch(iv time.Duration, shift uint8) time.Duration {
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	iv <<= shift
	if iv <= 0 || iv > e.sup.BackoffCap {
		iv = e.sup.BackoffCap
	}
	return iv
}

// drawRequest draws the randomized request delay for a gap toward sender
// n, stretched by the current backoff exponent.
func (e *Engine) drawRequest(n id.Node, shift uint8) time.Duration {
	d := float64(e.distance(n))
	iv := time.Duration(d * (e.sup.C1 + e.sup.C2*e.rng.Float64()))
	return e.backoffStretch(iv, shift)
}

// drawRepair draws the randomized repair delay toward requester n.
func (e *Engine) drawRepair(n id.Node) time.Duration {
	d := float64(e.distance(n))
	return time.Duration(d * (e.sup.D1 + e.sup.D2*e.rng.Float64()))
}

// mix64 is a split-mix style bit mixer for deterministic sampling.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// repairEligible decides whether this member is in the sampled responder
// set for one request attempt. The hash covers the attempt counter so
// repeated requests rotate the sample: if every sampled holder of one
// attempt lacks the data, a later attempt reaches different members.
func (e *Engine) repairEligible(sender id.Node, from uint64, attempt uint32) bool {
	n := len(e.view.Members)
	if n <= e.sup.RepairSample+1 {
		return true
	}
	h := mix64(uint64(e.env.Self()) ^ mix64(uint64(sender)) ^ mix64(from) ^ mix64(uint64(attempt)<<32))
	return h%uint64(n) < uint64(e.sup.RepairSample)
}

// holdsAny reports whether the local history holds any message of
// sender's range [from, to]; the scan is capped like serveRetrans.
func (e *Engine) holdsAny(sender id.Node, from, to uint64) bool {
	for seq := from; seq <= to && seq-from < 1024; seq++ {
		if _, ok := e.history[msgKey{sender: sender, seq: seq}]; ok {
			return true
		}
	}
	return false
}

// scanGapsSuppressed is the scalable-recovery counterpart of scanGaps:
// instead of NACKing the sender directly, gapped receivers arm randomized
// suppression timers and multicast one repair request when they fire.
// Senders are visited in ID order for seeded-run determinism.
func (e *Engine) scanGapsSuppressed(now time.Time) {
	senders := make([]id.Node, 0, len(e.peers))
	for n := range e.peers {
		senders = append(senders, n)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	for _, n := range senders {
		st := e.peers[n]
		if n == e.env.Self() {
			continue
		}
		if st.horizon < st.next {
			// Gap closed: disarm and forget the backoff.
			st.reqAt = time.Time{}
			st.reqBackoff = 0
			continue
		}
		if st.next > st.reqMark {
			st.reqBackoff = 0 // progress since the last request
		}
		if st.reqAt.IsZero() {
			st.reqAt = now.Add(e.drawRequest(n, st.reqBackoff))
			st.reqMark = st.next
			continue
		}
		if now.Before(st.reqAt) {
			continue
		}
		// Timer fired unsuppressed: multicast the request for the whole
		// missing range (responders cap their own work) and back off.
		st.reqAttempt++
		msg := wire.Message{
			Kind:    wire.KindRepairReq,
			Group:   e.cfg.Group,
			View:    e.view.ID,
			Sender:  n,
			Seq:     st.next,
			Aux:     st.horizon,
			MediaTS: st.reqAttempt, // attempt counter, rotates the responder sample
		}
		for _, m := range e.view.Members {
			if m == e.env.Self() {
				continue
			}
			e.env.Send(m, &msg)
		}
		e.met.nacksSent.Inc()
		e.rec(flightrec.EvNackSent, uint64(n), st.next)
		if st.reqBackoff < maxBackoffShift {
			st.reqBackoff++
		}
		st.reqMark = st.next
		st.reqAt = now.Add(e.drawRequest(n, st.reqBackoff))
	}
}

// onRepairReq handles one multicast repair request: suppress our own
// equivalent pending request, and — if sampled as a responder holding the
// data, or as the original sender — line up the repair.
func (e *Engine) onRepairReq(from id.Node, msg *wire.Message) {
	if msg.View != e.view.ID || !e.view.Contains(from) {
		return
	}
	now := e.env.Now()
	e.rec(flightrec.EvNackRecv, uint64(from), msg.Seq)
	sender, lo, hi := msg.Sender, msg.Seq, msg.Aux
	if sender == e.env.Self() {
		// The original sender answers immediately; damping absorbs the
		// duplicate requests suppression let through.
		e.serveRepair(sender, lo, hi, now)
		return
	}
	st := e.peer(sender)
	if hi > st.horizon {
		st.horizon = hi // the request reveals the sender's horizon
	}
	if !st.reqAt.IsZero() && lo <= st.next && st.horizon >= st.next {
		// Equivalent request heard before ours fired: cancel and re-arm
		// with backoff, as if we had sent it ourselves.
		if st.reqBackoff < maxBackoffShift {
			st.reqBackoff++
		}
		st.reqMark = st.next
		st.reqAt = now.Add(e.drawRequest(sender, st.reqBackoff))
		e.met.nacksSuppressed.Inc()
		e.rec(flightrec.EvNackSuppressed, uint64(sender), st.next)
	}
	if e.repairEligible(sender, lo, msg.MediaTS) && e.holdsAny(sender, lo, hi) {
		job, ok := e.repairs[sender]
		if !ok {
			e.repairs[sender] = &repairJob{at: now.Add(e.drawRepair(from)), from: lo, to: hi}
			return
		}
		// Widen an armed job rather than racing a second timer.
		if lo < job.from {
			job.from = lo
		}
		if hi > job.to {
			job.to = hi
		}
	}
}

// noteRetrans observes a repair arriving on the wire: it damps our own
// copy of that repair and suppresses any armed repair timer the heard
// repair covers.
func (e *Engine) noteRetrans(msg *wire.Message) {
	now := e.env.Now()
	e.recentRepairs[msgKey{sender: msg.Sender, seq: msg.Seq}] = now
	e.pruneRecentRepairs(now)
	if job, ok := e.repairs[msg.Sender]; ok && msg.Seq >= job.from && msg.Seq <= job.to {
		delete(e.repairs, msg.Sender)
		e.met.repairsSuppressed.Inc()
		e.rec(flightrec.EvRepairSuppressed, uint64(msg.Sender), msg.Seq)
	}
}

// fireRepairs serves armed repair jobs whose timers expired, in sender-ID
// order for seeded-run determinism.
func (e *Engine) fireRepairs(now time.Time) {
	if len(e.repairs) == 0 {
		return
	}
	senders := make([]id.Node, 0, len(e.repairs))
	for n, job := range e.repairs {
		if !now.Before(job.at) {
			senders = append(senders, n)
		}
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	for _, n := range senders {
		job := e.repairs[n]
		delete(e.repairs, n)
		e.serveRepair(n, job.from, job.to, now)
	}
}

// serveRepair multicasts every held message of sender's range [from, to]
// that was not already served within the damping window. Repairs go to
// the whole view so that every receiver sharing the loss — and every
// member with an armed repair timer — is satisfied by the one answer.
func (e *Engine) serveRepair(sender id.Node, from, to uint64, now time.Time) {
	local := sender != e.env.Self()
	for seq := from; seq <= to && seq-from < 1024; seq++ {
		key := msgKey{sender: sender, seq: seq}
		m, ok := e.history[key]
		if !ok {
			continue
		}
		if t, ok := e.recentRepairs[key]; ok && now.Sub(t) < e.sup.Damp {
			continue
		}
		e.recentRepairs[key] = now
		r := *m
		r.Kind = wire.KindRetrans
		for _, dst := range e.view.Members {
			if dst == e.env.Self() {
				continue
			}
			e.env.Send(dst, &r)
		}
		e.met.nacksServed.Inc()
		e.rec(flightrec.EvRetransmit, uint64(sender), seq)
		if local {
			e.met.localRepairs.Inc()
			e.rec(flightrec.EvLocalRepair, uint64(sender), seq)
		}
	}
	e.pruneRecentRepairs(now)
}

// pruneRecentRepairs bounds the damping memory; entries older than the
// window are dead weight.
func (e *Engine) pruneRecentRepairs(now time.Time) {
	if len(e.recentRepairs) < 4096 {
		return
	}
	for k, t := range e.recentRepairs {
		if now.Sub(t) >= e.sup.Damp {
			delete(e.recentRepairs, k)
		}
	}
}
