// Package rmcast implements the reliable multicast layer of the
// architecture: sender-sequenced multicast over the unreliable datagram
// transport, with negative-acknowledgment loss recovery, four delivery
// orderings (unordered, FIFO, causal, total), receiver-driven stability
// tracking for buffer garbage collection, and a flush hook that lets the
// membership layer approximate virtual synchrony across view changes.
//
// # Protocol sketch
//
// Every member numbers its multicasts per view (1, 2, ...). Receivers
// track the contiguous prefix received from each sender; gaps detected via
// later messages or via the periodic stability gossip (which carries each
// member's delivery horizon) trigger NACKs to the original sender, which
// answers with retransmissions from its history buffer.
//
// Ordering is layered on top of the reliable per-sender streams:
//
//   - Unordered delivers every message on first receipt.
//   - FIFO delivers each sender's stream in sequence order.
//   - Causal stamps messages with a vector clock over the view's member
//     ranks and delays delivery until causally deliverable.
//   - Total routes all delivery through slots assigned by per-shard
//     sequencers. Each message's stream label hashes to a shard and each
//     shard to a sequencer member (shard 0 is the view coordinator, so
//     OrderShards=1 degenerates to the classic single sequencer). A
//     sequencer assigns contiguous slot ranges per (sender, seq-run) and
//     announces them as pipelined KindOrderRange decisions — many ranges
//     in flight before earlier ones finish delivering — while the view
//     coordinator interleaves the per-shard slot spaces into the one
//     global delivery order with merge directives on the same wire kind.
//
// Stability gossip (KindStable) carries, for every sender, the highest
// contiguously delivered sequence number. A message acknowledged by every
// view member is stable: history buffers drop it. On a view change the
// membership layer calls Flush, which retransmits every unstable message
// to the proposed membership before the new view is installed.
package rmcast

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"scalamedia/internal/flightrec"
	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/proto"
	"scalamedia/internal/stats"
	"scalamedia/internal/vclock"
	"scalamedia/internal/wire"
)

// Ordering selects the delivery discipline.
type Ordering int

// The delivery orderings, weakest to strongest.
const (
	// Unordered delivers on first receipt, in arrival order.
	Unordered Ordering = iota + 1
	// FIFO delivers each sender's messages in send order.
	FIFO
	// Causal delivers in an order consistent with potential causality.
	Causal
	// Total delivers all messages in one agreed order on all members.
	Total
)

// String returns the ordering's conventional name.
func (o Ordering) String() string {
	switch o {
	case Unordered:
		return "unordered"
	case FIFO:
		return "fifo"
	case Causal:
		return "causal"
	case Total:
		return "total"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Default protocol timing.
const (
	DefaultResendAfter    = 40 * time.Millisecond
	DefaultStabilizeEvery = 150 * time.Millisecond
	// DefaultKeepaliveFactor scales StabilizeEvery into the default
	// StableKeepalive: how long a member with an unchanged ack vector
	// stays silent before re-gossiping anyway.
	DefaultKeepaliveFactor = 4
)

// Errors returned by Multicast.
var (
	// ErrNoView reports a multicast attempted before a view installed.
	ErrNoView = errors.New("rmcast: no view installed")
	// ErrPayloadTooLarge reports a payload above wire.MaxBody.
	ErrPayloadTooLarge = errors.New("rmcast: payload too large")
	// ErrBackpressure reports a multicast refused because the sender's
	// unstable history has reached Config.FlowWindow (or
	// Config.FlowWindowBytes): some member has not acknowledged enough of
	// the outstanding traffic. The send can be retried once the window
	// reopens (Config.OnFlowOpen signals that).
	ErrBackpressure = errors.New("rmcast: flow window full")
)

// DefaultSlowAfter is the ack-lag (in messages behind the local delivery
// horizon) at which a member is flagged slow when Config.SlowAfter is
// unset and no flow window implies a tighter bound.
const DefaultSlowAfter = 64

// Delivery is one message handed to the application.
type Delivery struct {
	Group   id.Group
	Sender  id.Node
	Seq     uint64
	View    id.View
	Stream  id.Stream
	Payload []byte
}

// Config parameterizes a multicast engine.
type Config struct {
	// Group scopes all traffic.
	Group id.Group
	// Ordering selects the delivery discipline. Defaults to FIFO.
	Ordering Ordering
	// OrderShards splits total-order sequencing across this many
	// members: each message's stream label (MulticastStream) hashes to a
	// shard, each shard to a sequencer member — shard 0 is the view
	// coordinator — and the coordinator's merge directives fix one
	// global delivery order across the shard slot spaces. 0 or 1 keeps
	// the classic single-sequencer semantics. Forced to 1 unless
	// Ordering is Total, and under DisableBatching (the legacy per-slot
	// wire protocol has no shard field). Capped at 256.
	OrderShards int
	// OnDeliver receives application messages. Called from the event
	// loop; must not block.
	OnDeliver func(Delivery)
	// ResendAfter is the gap age that triggers a NACK and the re-NACK
	// interval. Defaults to DefaultResendAfter.
	ResendAfter time.Duration
	// StabilizeEvery is the stability gossip period. Defaults to
	// DefaultStabilizeEvery.
	StabilizeEvery time.Duration
	// StableKeepalive bounds gossip suppression: a member whose ack
	// vector has not changed — and so skips its periodic gossip — still
	// re-broadcasts it after this long, repairing lost final vectors so
	// history buffers drain even in quiescence. Defaults to
	// DefaultKeepaliveFactor * StabilizeEvery.
	StableKeepalive time.Duration
	// DisableBatching reverts control traffic to one datagram per event:
	// singleton NACKs, one ORDER announcement per slot, and stability
	// gossip on every period regardless of change. The zero value —
	// batching on — coalesces NACK ranges per (destination, tick),
	// aggregates sequencer slots into one KindOrderBatch per tick, and
	// suppresses gossip while the ack vector is unchanged. The unbatched
	// mode exists for the T3 ablation baseline.
	DisableBatching bool
	// NoPiggyback stops attaching the ack vector to outgoing data
	// messages. With piggybacking on (the zero value), active senders
	// propagate stability for free and skip standalone gossip entirely.
	NoPiggyback bool
	// Metrics, when non-nil, receives live protocol counters under names
	// prefixed with MetricsPrefix. When nil the engine still counts (the
	// Counters accessor keeps working) but registers nothing.
	Metrics *stats.Registry
	// MetricsPrefix namespaces this engine's metrics; defaults to
	// "rmcast.". The hierarchical layer runs two engines per relay and
	// distinguishes them as "rmcast.local." and "rmcast.wide.".
	MetricsPrefix string
	// Flight, when non-nil, records protocol milestone events (sends,
	// deliveries, NACKs, retransmissions, gossip) into the flight
	// recorder ring. Nil disables recording at zero cost.
	Flight *flightrec.Recorder
	// Suppression tunes the SRM-style scalable loss recovery that is on
	// by default: randomized suppression timers for multicast repair
	// requests, sampled multicast local repair, duplicate-repair damping
	// and capped exponential request backoff (see suppress.go). Zero
	// fields take defaults.
	Suppression Suppression
	// DisableSuppression reverts loss recovery to the flat baseline:
	// unicast NACKs straight to the original sender, re-fired with
	// capped exponential backoff. The ablation arm for the T7
	// recovery-traffic experiment.
	DisableSuppression bool
	// Distance estimates the one-way delay to a peer, scaling the
	// suppression timers so nearer receivers request (and nearer holders
	// repair) first. Live stacks can wire it to clock-sync RTT samples;
	// nil (or a zero return) falls back to
	// Suppression.DefaultDistance.
	Distance func(id.Node) time.Duration
	// FlowWindow bounds this sender's own unstable history in messages:
	// once FlowWindow of its multicasts are delivered locally but not yet
	// acknowledged by every view member, MulticastStream refuses further
	// sends with ErrBackpressure until stability collection drains the
	// window. Zero disables flow control (the historical unbounded
	// behaviour).
	FlowWindow int
	// FlowWindowBytes optionally bounds the same window in payload bytes;
	// whichever of the two limits fills first backpressures. Zero
	// disables the byte bound.
	FlowWindowBytes int
	// OnFlowOpen fires (from the event loop) when a previously full flow
	// window drains back under its bounds — the retry signal for callers
	// that received ErrBackpressure.
	OnFlowOpen func()
	// SlowAfter is the ack lag, in messages behind this node's own
	// delivery horizon, at which a view member is flagged slow. Zero
	// derives a default: FlowWindow when flow control is on (a stalled
	// receiver pins blocked senders at exactly the window, while healthy
	// peers only brush it transiently), DefaultSlowAfter otherwise. Slow
	// evaluation runs only when OnSlow is set.
	SlowAfter int
	// OnSlow fires (from the event loop) when a view member transitions
	// between slow and caught-up, with the observed maximum per-sender
	// ack lag. Lag is measured from the stability vectors the protocol
	// already gossips, so a slow-but-alive member — one that keeps
	// heartbeating and sending but stops draining — is distinguished
	// from a crashed one.
	OnSlow func(peer id.Node, lag uint64, slow bool)
}

// Counters exposes protocol event counts for tests and experiments.
type Counters struct {
	Sent         uint64 // application multicasts initiated
	Delivered    uint64 // messages handed to OnDeliver
	Duplicates   uint64 // redundant receptions discarded
	NacksSent    uint64
	NacksServed  uint64 // retransmissions sent in response to NACKs
	Retransmits  uint64 // retransmissions received
	FlushResends uint64 // messages re-sent by Flush
	OrdersSent   uint64 // sequencer slot assignments (messages sequenced)
	OrderRanges  uint64 // ordering units + merge directives broadcast
	PiggyAcks    uint64 // ack vectors piggybacked on outgoing data
	GossipAcks   uint64 // standalone stability gossip broadcasts

	// Scalable-recovery counters (see suppress.go). NacksSent and
	// NacksServed count request/repair events — one per multicast, not
	// per fan-out datagram — so flat and suppressed runs compare under
	// the IP-multicast cost model.
	NacksSuppressed   uint64 // pending requests cancelled on hearing an equivalent one
	RepairsSuppressed uint64 // armed repair timers cancelled on hearing the repair
	LocalRepairs      uint64 // repairs served by a member other than the original sender

	// FlowRejected counts multicasts refused with ErrBackpressure.
	FlowRejected uint64
}

// engMetrics is the engine's live counter set. The pointers are resolved
// once at construction — against the configured registry, or as
// unregistered standalone atomics — so every hot-path increment is a
// single atomic add with no map lookup. One source of truth: Counters()
// reads these same atomics back.
type engMetrics struct {
	sent         *stats.Counter
	delivered    *stats.Counter
	duplicates   *stats.Counter
	nacksSent    *stats.Counter
	nacksServed  *stats.Counter
	retransmits  *stats.Counter
	flushResends *stats.Counter
	ordersSent   *stats.Counter
	orderRanges  *stats.Counter
	piggyAcks    *stats.Counter
	gossipAcks   *stats.Counter

	nacksSuppressed   *stats.Counter
	repairsSuppressed *stats.Counter
	localRepairs      *stats.Counter
	flowRejected      *stats.Counter

	historyLen   *stats.Gauge     // delivered-but-unstable messages buffered
	flowOcc      *stats.Gauge     // own unstable multicasts (the flow-window occupancy)
	stabilityLag *stats.Histogram // history depth sampled at stability rounds
}

// newEngMetrics resolves the counter set against reg (nil for standalone
// counters visible only through Counters()).
func newEngMetrics(reg *stats.Registry, prefix string) engMetrics {
	if reg == nil {
		return engMetrics{
			sent:              &stats.Counter{},
			delivered:         &stats.Counter{},
			duplicates:        &stats.Counter{},
			nacksSent:         &stats.Counter{},
			nacksServed:       &stats.Counter{},
			retransmits:       &stats.Counter{},
			flushResends:      &stats.Counter{},
			ordersSent:        &stats.Counter{},
			orderRanges:       &stats.Counter{},
			piggyAcks:         &stats.Counter{},
			gossipAcks:        &stats.Counter{},
			nacksSuppressed:   &stats.Counter{},
			repairsSuppressed: &stats.Counter{},
			localRepairs:      &stats.Counter{},
			flowRejected:      &stats.Counter{},
			historyLen:        &stats.Gauge{},
			flowOcc:           &stats.Gauge{},
			stabilityLag:      stats.NewReservoirHistogram(0),
		}
	}
	return engMetrics{
		sent:              reg.Counter(prefix + "sent"),
		delivered:         reg.Counter(prefix + "delivered"),
		duplicates:        reg.Counter(prefix + "duplicates"),
		nacksSent:         reg.Counter(prefix + "nacks_sent"),
		nacksServed:       reg.Counter(prefix + "nacks_served"),
		retransmits:       reg.Counter(prefix + "retransmits_recv"),
		flushResends:      reg.Counter(prefix + "flush_resends"),
		ordersSent:        reg.Counter(prefix + "orders_sent"),
		orderRanges:       reg.Counter(prefix + "order_ranges"),
		piggyAcks:         reg.Counter(prefix + "acks_piggybacked"),
		gossipAcks:        reg.Counter(prefix + "acks_gossiped"),
		nacksSuppressed:   reg.Counter(prefix + "nacks_suppressed"),
		repairsSuppressed: reg.Counter(prefix + "repairs_suppressed"),
		localRepairs:      reg.Counter(prefix + "local_repairs"),
		flowRejected:      reg.Counter(prefix + "flow_rejected"),
		historyLen:        reg.Gauge(prefix + "history_len"),
		flowOcc:           reg.Gauge(prefix + "flow_occupancy"),
		stabilityLag:      reg.Histogram(prefix + "stability_lag"),
	}
}

// msgKey identifies one multicast within a view.
type msgKey struct {
	sender id.Node
	seq    uint64
}

// queuedSend is one multicast deferred by a view-change freeze.
type queuedSend struct {
	stream  id.Stream
	payload []byte
}

// shardState is one ordering shard: the receiver-side decision log and
// delivery cursor for the shard's slot space, plus the sequencer-side
// assignment buffer used when this node sequences the shard.
//
// Decisions are immutable units (wire.OrderRange values): a unit is
// announced once, re-served verbatim during recovery, and never split or
// coalesced after the flush that numbered it. Receivers therefore dedup
// by slot position alone — a unit starting below decideNext is known in
// full — and the log needs no per-slot index.
type shardState struct {
	decideNext uint64                     // lowest slot not covered by log
	log        []wire.OrderRange          // contiguous admitted units, slot order
	pend       map[uint64]wire.OrderRange // out-of-order units by SlotFrom
	logIdx     int                        // delivery cursor: index into log
	logOff     uint32                     // delivery cursor: offset into log[logIdx]
	waiting    int                        // reliable messages queued on this shard

	// Sequencer state: seq-runs accumulated since the last flush. Slots
	// are assigned at flush time (SlotFrom stays unset in assign), so a
	// sender's burst collapses into one range no matter how its
	// arrivals interleave with other senders.
	seqSlot    uint64            // next slot to assign at flush
	assign     []wire.OrderRange // open runs awaiting slot assignment
	assignMsgs int               // messages covered by assign
	openRun    map[id.Node]int   // sender -> growable run index in assign
}

// peerState tracks the reliable stream from one sender.
type peerState struct {
	next    uint64                   // lowest sequence number not yet contiguously received
	buf     map[uint64]*wire.Message // received out-of-order messages >= next
	early   map[uint64]bool          // delivered ahead of order (Unordered mode)
	horizon uint64                   // highest sequence known to exist

	// Total ordering: per-shard FIFO queues of reliable-but-undelivered
	// messages. A sender's messages on one shard are sequenced in seq
	// order, so the queue front is always the next message any ordering
	// unit for (sender, shard) can reference — delivery is a cursor pop,
	// no per-message map. Indexed by shard; allocated only under Total.
	oq     [][]*wire.Message
	oqHead []int

	// Flat-recovery state: unicast re-NACK pacing with capped
	// exponential backoff (DisableSuppression mode).
	lastNack    time.Time
	nackBackoff uint8  // backoff exponent of the next re-NACK interval
	nackMark    uint64 // next at the last NACK; progress past it resets backoff

	// Suppressed-recovery state: the armed randomized request timer.
	reqAt      time.Time // when the pending repair request fires; zero = disarmed
	reqBackoff uint8     // backoff exponent of the next request interval
	reqMark    uint64    // next at the last request; progress past it resets backoff
	reqAttempt uint32    // request attempts for this stream, rotates responder sampling
}

// Engine is the reliable multicast state machine for one node and group.
// It implements proto.Handler and must only be used from the event loop.
type Engine struct {
	env proto.Env
	cfg Config

	view member.View
	rank int // local rank in view, -1 if none

	// Sending state (per view).
	nextSend uint64
	vc       vclock.VC // causal clock over view ranks

	// Receiving state (per view).
	peers map[id.Node]*peerState

	// History of delivered-but-unstable messages for flush and NACK
	// service, keyed per view. Entries arrive in contiguous per-sender
	// sequence order (only the reliable prefix is stored), so histMin and
	// histMax bracket each sender's resident range and stability pruning
	// walks the stable prefix directly instead of scanning the whole map.
	history map[msgKey]*wire.Message
	histMin map[id.Node]uint64
	histMax map[id.Node]uint64

	// Causal holding pool: reliable-but-not-yet-deliverable messages.
	causalPool []*wire.Message

	// Total-order state: per-shard decision logs and sequencer-side
	// assignment buffers (see shardState), plus the global merge stream
	// that interleaves shard slot spaces when sharding is on.
	nshards     int
	shards      []shardState
	totalNext   uint64 // global messages delivered in total order
	pendingData int    // reliable messages queued undelivered across shards

	// Merge stream (only used when nshards > 1). The view coordinator
	// covers newly decided slots with MergeEntry directives; receivers
	// admit them contiguously by From and consume shard logs
	// accordingly, so every member interleaves shards identically.
	mergeNext uint64 // lowest merge-stream index not covered by mergeLog
	mergeLog  []wire.MergeEntry
	mergePend map[uint64]wire.MergeEntry // out-of-order directives by From
	mergeIdx  int    // delivery cursor: index into mergeLog
	mergeOff  uint32 // delivery cursor: offset into mergeLog[mergeIdx]
	mergeSeq  uint64 // coordinator: next merge-stream index to cover
	pendMerge []wire.MergeEntry // coordinator: directives awaiting broadcast
	// Coordinator: foreign sequencers' units relayed for rebroadcast.
	// Non-coordinator sequencers unicast their flushed ranges here
	// instead of broadcasting, so the whole group sees one ordering
	// datagram stream (ranges + merges together) rather than one
	// broadcast per shard plus a separate merge broadcast.
	pendRanges []wire.OrderRange

	// Stability: per-member ack vectors.
	ackMatrix     map[id.Node]map[id.Node]uint64
	lastGossip    time.Time // last time the local vector went out (gossip or piggyback)
	lastStableTry time.Time // last periodic gossip consideration
	ackDirty      bool      // local vector changed since it last went out
	ackMerges     uint8     // merges since the last inline stability collection
	lastOrderNack time.Time

	// Batched control traffic, flushed per tick.
	nackQueue map[id.Node][]wire.NackRange // coalesced NACKs per destination

	// Reusable scratch to keep the steady-state send path allocation-free.
	ackScratch   []wire.AckEntry
	bodyScratch  []byte
	rangeScratch []wire.OrderRange
	mergeScratch []wire.MergeEntry
	decRanges    []wire.OrderRange // KindOrderRange decode scratch
	decMerges    []wire.MergeEntry

	// Messages for a view newer than the installed one, replayed after
	// installation.
	futureBuf []*wire.Message

	// View-change freeze: while a view proposal is being flushed, new
	// multicasts and new sequencer slot assignments are deferred so the
	// membership layer's flush-convergence check stays authoritative
	// (see Freeze).
	frozen    bool
	sendQueue []queuedSend

	// Scalable recovery (see suppress.go): normalized tuning, armed
	// repair timers per original sender, the duplicate-repair damping
	// memory, and this node's private deterministic randomness for the
	// suppression timer draws.
	sup           Suppression
	repairs       map[id.Node]*repairJob
	recentRepairs map[msgKey]time.Time
	rng           *rand.Rand

	// Total-order slot re-request backoff (mirrors the per-sender NACK
	// backoff; resets when totalNext advances).
	orderNackBackoff uint8
	orderNackMark    uint64

	// Flow control: whether the window is currently full (one EvFlowBlock
	// per fill, one OnFlowOpen per drain), and the payload bytes of own
	// unstable multicasts when FlowWindowBytes bounds them.
	flowBlocked bool
	flowBytes   int

	// Slow-receiver tracking: members currently flagged slow, evaluated
	// from the stability matrix each stability period (see evalSlow).
	slowPeers map[id.Node]bool

	met engMetrics
}

var _ proto.Handler = (*Engine)(nil)

// New returns a multicast engine with no view. Wire it to a membership
// engine by calling SetView from Config.OnView and Flush from
// Config.OnFlush.
func New(env proto.Env, cfg Config) *Engine {
	if cfg.Ordering == 0 {
		cfg.Ordering = FIFO
	}
	if cfg.ResendAfter <= 0 {
		cfg.ResendAfter = DefaultResendAfter
	}
	if cfg.StabilizeEvery <= 0 {
		cfg.StabilizeEvery = DefaultStabilizeEvery
	}
	if cfg.StableKeepalive <= 0 {
		cfg.StableKeepalive = DefaultKeepaliveFactor * cfg.StabilizeEvery
	}
	if cfg.MetricsPrefix == "" {
		cfg.MetricsPrefix = "rmcast."
	}
	if cfg.OrderShards < 1 || cfg.Ordering != Total || cfg.DisableBatching {
		cfg.OrderShards = 1
	}
	if cfg.OrderShards > 256 {
		cfg.OrderShards = 256 // the wire shard field is a uint8
	}
	if cfg.SlowAfter <= 0 {
		if cfg.FlowWindow > 0 {
			cfg.SlowAfter = cfg.FlowWindow
		} else {
			cfg.SlowAfter = DefaultSlowAfter
		}
	}
	e := &Engine{
		env:           env,
		cfg:           cfg,
		met:           newEngMetrics(cfg.Metrics, cfg.MetricsPrefix),
		rank:          -1,
		nshards:       cfg.OrderShards,
		peers:         make(map[id.Node]*peerState),
		history:       make(map[msgKey]*wire.Message),
		histMin:       make(map[id.Node]uint64),
		histMax:       make(map[id.Node]uint64),
		ackMatrix:     make(map[id.Node]map[id.Node]uint64),
		nackQueue:     make(map[id.Node][]wire.NackRange),
		sup:           cfg.Suppression.withDefaults(),
		repairs:       make(map[id.Node]*repairJob),
		recentRepairs: make(map[msgKey]time.Time),
		slowPeers:     make(map[id.Node]bool),
		// Seeded from the node identity only, so a seeded simulation —
		// and any rerun of it — draws the same timer sequence.
		rng: rand.New(rand.NewSource(int64(mix64(uint64(env.Self()) + 0x5eed)))),
	}
	e.resetShards()
	return e
}

// resetShards rebuilds the per-shard total-order state for a new view.
func (e *Engine) resetShards() {
	e.shards = make([]shardState, e.nshards)
	for i := range e.shards {
		e.shards[i].openRun = make(map[id.Node]int)
	}
	e.totalNext = 0
	e.pendingData = 0
	e.mergeNext, e.mergeSeq = 0, 0
	e.mergeIdx, e.mergeOff = 0, 0
	e.mergeLog = nil
	e.mergePend = nil
	e.pendMerge = e.pendMerge[:0]
	e.pendRanges = e.pendRanges[:0]
}

// Counters returns a copy of the protocol event counters.
func (e *Engine) Counters() Counters {
	return Counters{
		Sent:         e.met.sent.Value(),
		Delivered:    e.met.delivered.Value(),
		Duplicates:   e.met.duplicates.Value(),
		NacksSent:    e.met.nacksSent.Value(),
		NacksServed:  e.met.nacksServed.Value(),
		Retransmits:  e.met.retransmits.Value(),
		FlushResends: e.met.flushResends.Value(),
		OrdersSent:   e.met.ordersSent.Value(),
		OrderRanges:  e.met.orderRanges.Value(),
		PiggyAcks:    e.met.piggyAcks.Value(),
		GossipAcks:   e.met.gossipAcks.Value(),

		NacksSuppressed:   e.met.nacksSuppressed.Value(),
		RepairsSuppressed: e.met.repairsSuppressed.Value(),
		LocalRepairs:      e.met.localRepairs.Value(),
		FlowRejected:      e.met.flowRejected.Value(),
	}
}

// rec stamps one flight-recorder event with this node's identity and
// clock; free when no recorder is configured.
func (e *Engine) rec(code flightrec.Code, a, b uint64) {
	if e.cfg.Flight != nil {
		e.cfg.Flight.Record(uint64(e.env.Self()), e.env.Now().UnixMilli(), code, a, b)
	}
}

// View returns the view the engine currently operates in.
func (e *Engine) View() member.View { return e.view }

// SetView installs a new view, resetting all per-view protocol state.
// Sequence spaces, vector clocks and total-order slots are per view; the
// preceding Flush has already pushed unstable traffic to the survivors.
func (e *Engine) SetView(v member.View) {
	e.drainForViewChange()
	e.view = v
	e.rank = v.Rank(e.env.Self())
	e.nextSend = 0
	e.vc = vclock.New(v.Size())
	e.peers = make(map[id.Node]*peerState)
	e.history = make(map[msgKey]*wire.Message)
	clear(e.histMin)
	clear(e.histMax)
	e.causalPool = nil
	e.resetShards()
	e.ackMatrix = make(map[id.Node]map[id.Node]uint64)
	e.frozen = false
	e.ackDirty = false
	e.nackQueue = make(map[id.Node][]wire.NackRange)
	e.repairs = make(map[id.Node]*repairJob)
	e.recentRepairs = make(map[msgKey]time.Time)
	e.orderNackBackoff = 0
	e.orderNackMark = 0

	// The per-view history is gone, so the flow window is empty again;
	// unblock any sender waiting on it. Slow flags for members the new
	// view dropped are cleared (they are no longer anyone's problem);
	// flags for retained members persist so an eviction grace period does
	// not restart across unrelated view changes.
	e.flowBytes = 0
	e.maybeReopenFlow()
	if len(e.slowPeers) > 0 {
		departed := make([]id.Node, 0, len(e.slowPeers))
		for n := range e.slowPeers {
			if !v.Contains(n) {
				departed = append(departed, n)
			}
		}
		sort.Slice(departed, func(i, j int) bool { return departed[i] < departed[j] })
		for _, n := range departed {
			delete(e.slowPeers, n)
			e.rec(flightrec.EvSlowClear, uint64(n), 0)
			if e.cfg.OnSlow != nil {
				e.cfg.OnSlow(n, 0, false)
			}
		}
	}

	// Replay buffered messages that were sent in this view.
	pending := e.futureBuf
	e.futureBuf = nil
	for _, m := range pending {
		if m.View == v.ID {
			e.dispatch(m)
		} else if m.View > v.ID {
			e.futureBuf = append(e.futureBuf, m)
		}
	}

	// Multicasts deferred by the freeze go out in the new view; a node
	// the new view excludes drops them (it was evicted mid-send). Replay
	// bypasses the flow window: these sends were already accepted (the
	// freeze path returned nil) and must not be silently dropped now.
	queued := e.sendQueue
	e.sendQueue = nil
	if e.rank >= 0 {
		for _, q := range queued {
			e.multicast(q.stream, q.payload, false)
		}
	}
}

// drainForViewChange resolves messages still blocked on ordering when a
// view change commits. After the membership layer's flush-convergence
// gate every surviving member holds the same blocked set, so the policy
// below keeps delivery sequences identical across members:
//
//   - Total: queued messages whose ordering decisions died with a shard
//     sequencer (or were never assigned, or whose merge directives the
//     old coordinator never issued) are delivered in (sender, seq)
//     order — the same order everywhere, appended after the same
//     delivered prefix the flush-convergence gate equalized.
//   - Causal: pool remnants are dropped. A remnant's dependency was
//     delivered by no survivor (a live holder would have flushed it), so
//     delivering the remnant would violate causality, and dropping it is
//     consistent across members.
//   - FIFO/unordered gap buffers are dropped for the same reason: the
//     gap message exists nowhere among the survivors.
func (e *Engine) drainForViewChange() {
	if e.view.ID == 0 || e.cfg.Ordering != Total || e.pendingData == 0 {
		return
	}
	rest := make([]*wire.Message, 0, e.pendingData)
	for _, st := range e.peers {
		for s := range st.oq {
			for i := st.oqHead[s]; i < len(st.oq[s]); i++ {
				rest = append(rest, st.oq[s][i])
			}
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].Sender != rest[j].Sender {
			return rest[i].Sender < rest[j].Sender
		}
		return rest[i].Seq < rest[j].Seq
	})
	for _, m := range rest {
		e.deliver(m)
	}
	e.pendingData = 0
}

// Freeze defers new multicasts and new sequencer slot assignments until
// the next view installs. The membership layer calls it when a view
// change begins: everything this engine did before the freeze is visible
// in its stability vector (StabilityVector), so the coordinator's
// flush-convergence check sees a complete picture, and nothing sent after
// it can slip into the old view behind the check's back. Deferred
// multicasts are sent in the next view; SetView lifts the freeze.
func (e *Engine) Freeze() { e.frozen = true }

// StabilityVector returns this member's delivery state for the membership
// layer's flush-convergence gate: the per-sender contiguously delivered
// counts and, under total ordering, the number of slots delivered.
func (e *Engine) StabilityVector() ([]wire.AckEntry, uint64) {
	return e.ackVector(), e.totalNext
}

// HistoryLen returns the number of delivered-but-unstable messages held,
// which the chaos harness uses to check stability garbage collection.
func (e *Engine) HistoryLen() int { return len(e.history) }

// FlowOccupancy returns how many of this node's own multicasts are still
// unstable — the flow-window occupancy. O(1): own history entries form a
// contiguous [histMin, histMax] bracket.
func (e *Engine) FlowOccupancy() int {
	self := e.env.Self()
	lo, ok := e.histMin[self]
	if !ok {
		return 0
	}
	return int(e.histMax[self] - lo + 1)
}

// FlowBlocked reports whether the last enforced multicast hit a full flow
// window that has not reopened yet.
func (e *Engine) FlowBlocked() bool { return e.flowBlocked }

// flowFull reports whether sending one more payload of extra bytes would
// exceed a configured flow bound.
func (e *Engine) flowFull(extra int) bool {
	if e.cfg.FlowWindow > 0 && e.FlowOccupancy() >= e.cfg.FlowWindow {
		return true
	}
	return e.cfg.FlowWindowBytes > 0 && e.flowBytes+extra > e.cfg.FlowWindowBytes
}

// maybeReopenFlow clears the blocked latch — and signals OnFlowOpen — once
// the window is back under its bounds. Called wherever own history can
// shrink: stability collection and view installation.
func (e *Engine) maybeReopenFlow() {
	if !e.flowBlocked || e.flowFull(0) {
		return
	}
	e.flowBlocked = false
	e.rec(flightrec.EvFlowOpen, uint64(e.FlowOccupancy()), 0)
	if e.cfg.OnFlowOpen != nil {
		e.cfg.OnFlowOpen()
	}
}

// SlowPeers returns the members currently flagged slow, sorted, for tests
// and experiments.
func (e *Engine) SlowPeers() []id.Node {
	if len(e.slowPeers) == 0 {
		return nil
	}
	out := make([]id.Node, 0, len(e.slowPeers))
	for n := range e.slowPeers {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// evalSlow re-derives each view member's ack lag from the stability
// matrix: the maximum, over senders, of how far the member's acknowledged
// prefix trails this node's own contiguously delivered prefix. Crossing
// SlowAfter flags the member slow; falling back under half the threshold
// (hysteresis, so a member hovering at the boundary does not flap its
// grace period) clears it. Runs once per stability period.
func (e *Engine) evalSlow() {
	if e.cfg.OnSlow == nil {
		return
	}
	thr := uint64(e.cfg.SlowAfter)
	self := e.env.Self()
	for _, m := range e.view.Members {
		if m == self {
			continue
		}
		var lag uint64
		row := e.ackMatrix[m]
		for snd, st := range e.peers {
			ref := st.next - 1
			if snd == e.env.Self() {
				ref = e.nextSend
			}
			if got := row[snd]; ref > got && ref-got > lag {
				lag = ref - got
			}
		}
		switch flagged := e.slowPeers[m]; {
		case !flagged && lag >= thr:
			e.slowPeers[m] = true
			e.rec(flightrec.EvSlowFlag, uint64(m), lag)
			e.cfg.OnSlow(m, lag, true)
		case flagged && lag < (thr+1)/2:
			delete(e.slowPeers, m)
			e.rec(flightrec.EvSlowClear, uint64(m), lag)
			e.cfg.OnSlow(m, lag, false)
		}
	}
}

// Flush retransmits every unstable message in the local history to the
// members of the proposed view. The membership layer calls it between
// ViewPropose and FlushOK; receivers discard duplicates, so over-sending
// is safe.
func (e *Engine) Flush(proposed member.View) {
	if e.view.ID == 0 {
		return
	}
	// Prune first: the inline collection is throttled, so the history may
	// hold entries the ack matrix already proves stable — retransmitting
	// those would be wasted flush traffic.
	e.collectStable()
	// Iterate in (sender, seq) order so the datagram sequence — and with
	// it a seeded simulation — is identical on every run.
	keys := make([]msgKey, 0, len(e.history))
	for k := range e.history {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sender != keys[j].sender {
			return keys[i].sender < keys[j].sender
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		// One copy per message, not per destination: Env.Send encodes
		// synchronously and does not retain the message.
		r := *e.history[k]
		r.Kind = wire.KindRetrans
		for _, dst := range proposed.Members {
			if dst == e.env.Self() {
				continue
			}
			e.env.Send(dst, &r)
			e.met.flushResends.Inc()
		}
	}
}

// Multicast sends payload to the current view on stream 0. The local
// node delivers its own message through the same pipeline as remote
// receivers.
func (e *Engine) Multicast(payload []byte) error {
	return e.MulticastStream(0, payload)
}

// MulticastStream sends payload labelled with a media stream. Under
// total ordering with sequencer sharding the label selects the shard —
// and with it the sequencer member — that orders the message, so
// independent streams stop serializing through one node while each
// stream stays totally ordered and the coordinator's merge rule fixes
// one global order across streams. Other orderings carry the label
// through to Delivery untouched.
func (e *Engine) MulticastStream(stream id.Stream, payload []byte) error {
	return e.multicast(stream, payload, true)
}

// multicast is the send path behind Multicast/MulticastStream. enforceFlow
// applies the stability-window bound; the freeze-queue replay at SetView
// passes false because those sends were already accepted.
func (e *Engine) multicast(stream id.Stream, payload []byte, enforceFlow bool) error {
	if e.view.ID == 0 || e.rank < 0 {
		return ErrNoView
	}
	if len(payload) > wire.MaxBody {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(payload))
	}
	if e.frozen {
		// A view change is flushing: defer to the next view rather than
		// race the flush-convergence check.
		if len(e.sendQueue) < 4096 {
			e.sendQueue = append(e.sendQueue, queuedSend{
				stream: stream, payload: append([]byte(nil), payload...),
			})
		}
		return nil
	}
	if enforceFlow && e.flowFull(len(payload)) {
		if !e.flowBlocked {
			e.flowBlocked = true
			e.rec(flightrec.EvFlowBlock, e.nextSend+1, uint64(e.FlowOccupancy()))
		}
		e.met.flowRejected.Inc()
		return ErrBackpressure
	}
	if e.cfg.FlowWindowBytes > 0 {
		e.flowBytes += len(payload)
	}
	e.nextSend++
	msg := &wire.Message{
		Kind:   wire.KindData,
		Group:  e.cfg.Group,
		View:   e.view.ID,
		Sender: e.env.Self(),
		Seq:    e.nextSend,
		Stream: stream,
		Body:   append([]byte(nil), payload...),
	}
	switch e.cfg.Ordering {
	case Causal:
		msg.Flags |= wire.FlagCausal
		// Stamp vc+1 for our rank without advancing the local clock;
		// the clock advances when the message is delivered locally,
		// keeping the deliverability test uniform for all receivers.
		ts := e.vc.Clone()
		ts.Tick(e.rank)
		msg.TS = ts
	case Total:
		msg.Flags |= wire.FlagTotalOrder
	}
	e.met.sent.Inc()
	e.rec(flightrec.EvSend, msg.Seq, 0)
	if e.view.Size() > 1 {
		// One outgoing copy for all destinations (Env.Send encodes
		// synchronously); the history copy stays piggyback-free so
		// retransmissions never carry a stale ack vector.
		out := *msg
		if !e.cfg.NoPiggyback {
			e.ackScratch = e.appendAckRows(e.ackScratch[:0])
			if len(e.ackScratch) > 0 {
				out.Flags |= wire.FlagPiggyAck
				out.Acks = e.ackScratch
				e.lastGossip = e.env.Now()
				e.ackDirty = false
				e.met.piggyAcks.Inc()
			}
		}
		for _, m := range e.view.Members {
			if m == e.env.Self() {
				continue
			}
			e.env.Send(m, &out)
		}
	}
	// Local copy through the normal pipeline (it is always in order).
	e.dispatch(msg)
	return nil
}

// OnMessage handles one inbound datagram.
func (e *Engine) OnMessage(from id.Node, msg *wire.Message) {
	if msg.Group != e.cfg.Group {
		return
	}
	switch msg.Kind {
	case wire.KindData, wire.KindRetrans:
		if msg.Kind == wire.KindRetrans {
			e.met.retransmits.Inc()
			if !e.cfg.DisableSuppression {
				e.noteRetrans(msg)
			}
		}
		if msg.Flags&wire.FlagPiggyAck != 0 {
			if msg.View == e.view.ID && e.view.Contains(from) {
				e.mergeAckRow(from, msg.Acks)
			}
			// Strip before the message can reach the history buffer, so
			// retransmissions of it never replay a stale vector.
			msg.Flags &^= wire.FlagPiggyAck
			msg.Acks = nil
		}
		e.routeData(msg)
	case wire.KindNack:
		e.onNack(from, msg)
	case wire.KindNackBatch:
		e.onNackBatch(from, msg)
	case wire.KindRepairReq:
		e.onRepairReq(from, msg)
	case wire.KindOrder, wire.KindOrderBatch, wire.KindOrderRange:
		e.routeOrder(msg)
	case wire.KindStable:
		e.onStable(from, msg)
	}
}

// routeData drops stale traffic, buffers future-view traffic and
// dispatches current-view traffic.
func (e *Engine) routeData(msg *wire.Message) {
	switch {
	case msg.View == e.view.ID && e.view.ID != 0:
		e.dispatch(msg)
	case msg.View > e.view.ID:
		if len(e.futureBuf) < 4096 {
			e.futureBuf = append(e.futureBuf, msg)
		}
	default:
		e.met.duplicates.Inc() // stale view: already flushed to us
	}
}

func (e *Engine) routeOrder(msg *wire.Message) {
	switch {
	case msg.View == e.view.ID && e.view.ID != 0:
		switch msg.Kind {
		case wire.KindOrderRange:
			e.onOrderRange(msg)
		case wire.KindOrderBatch:
			e.onOrderBatch(msg)
		default:
			e.onOrder(msg)
		}
	case msg.View > e.view.ID:
		if len(e.futureBuf) < 4096 {
			e.futureBuf = append(e.futureBuf, msg)
		}
	}
}

// dispatch runs the reliability stage for a current-view message.
func (e *Engine) dispatch(msg *wire.Message) {
	switch msg.Kind {
	case wire.KindOrder:
		e.onOrder(msg)
		return
	case wire.KindOrderBatch:
		e.onOrderBatch(msg)
		return
	case wire.KindOrderRange:
		e.onOrderRange(msg)
		return
	}
	st := e.peer(msg.Sender)
	if msg.Seq > st.horizon {
		st.horizon = msg.Seq
	}
	if st.next == 0 {
		st.next = 1
	}
	switch {
	case msg.Seq < st.next:
		e.met.duplicates.Inc()
	case msg.Seq == st.next:
		e.contiguous(msg, st)
		st.next++
		for {
			nxt, ok := st.buf[st.next]
			if !ok {
				break
			}
			delete(st.buf, st.next)
			e.contiguous(nxt, st)
			st.next++
		}
	default: // gap
		if _, dup := st.buf[msg.Seq]; dup || st.early[msg.Seq] {
			e.met.duplicates.Inc()
			return
		}
		st.buf[msg.Seq] = msg
		if e.cfg.Ordering == Unordered {
			// Deliver immediately; remember to skip on gap fill.
			st.early[msg.Seq] = true
			e.deliver(msg)
		}
	}
}

// contiguous processes a message that extends a sender's reliable prefix.
func (e *Engine) contiguous(msg *wire.Message, st *peerState) {
	key := msgKey{sender: msg.Sender, seq: msg.Seq}
	e.history[key] = msg
	if _, ok := e.histMin[msg.Sender]; !ok {
		e.histMin[msg.Sender] = msg.Seq
	}
	e.histMax[msg.Sender] = msg.Seq // contiguous: always the new maximum
	e.ackDirty = true               // the local ack vector advances with st.next
	switch e.cfg.Ordering {
	case Unordered:
		if st.early[msg.Seq] {
			delete(st.early, msg.Seq) // already delivered ahead of order
			return
		}
		e.deliver(msg)
	case FIFO:
		e.deliver(msg)
	case Causal:
		e.causalPool = append(e.causalPool, msg)
		e.drainCausal()
	case Total:
		shard := e.shardOf(msg.Stream)
		st.oq[shard] = append(st.oq[shard], msg)
		e.shards[shard].waiting++
		e.pendingData++
		e.offerTotal(shard, msg)
		e.drainTotal()
	}
}

// deliver hands one message to the application.
func (e *Engine) deliver(msg *wire.Message) {
	e.met.delivered.Inc()
	e.rec(flightrec.EvDeliver, uint64(msg.Sender), msg.Seq)
	if e.cfg.OnDeliver == nil {
		return
	}
	e.cfg.OnDeliver(Delivery{
		Group:   msg.Group,
		Sender:  msg.Sender,
		Seq:     msg.Seq,
		View:    msg.View,
		Stream:  msg.Stream,
		Payload: msg.Body,
	})
}

// drainCausal delivers every causally deliverable message in the pool.
func (e *Engine) drainCausal() {
	progress := true
	for progress {
		progress = false
		for i := 0; i < len(e.causalPool); i++ {
			m := e.causalPool[i]
			srank := e.view.Rank(m.Sender)
			if srank < 0 {
				// Sender left the view; deliver in arrival order.
				e.causalPool = append(e.causalPool[:i], e.causalPool[i+1:]...)
				e.deliver(m)
				progress = true
				break
			}
			if vclock.Deliverable(m.TS, e.vc, srank) {
				e.causalPool = append(e.causalPool[:i], e.causalPool[i+1:]...)
				e.vc = e.vc.Merge(m.TS)
				e.deliver(m)
				progress = true
				break
			}
		}
	}
}

// shardOf maps a stream label to its ordering shard. Stream 0 — plain
// Multicast — always lands on shard 0, so unlabelled traffic keeps the
// single-sequencer behavior regardless of OrderShards.
func (e *Engine) shardOf(stream id.Stream) int {
	if e.nshards <= 1 {
		return 0
	}
	return int((uint32(stream) * 0x9e3779b1) % uint32(e.nshards))
}

// sequencerOf returns the member sequencing a shard in the current view.
// Shard 0 maps to the view coordinator, preserving the classic layout
// when OrderShards is 1.
func (e *Engine) sequencerOf(shard int) id.Node {
	return e.view.Members[shard%e.view.Size()]
}

// rangeFlushThreshold caps how many sequenced messages accumulate before
// the sequencer flushes mid-tick. Under sustained load this keeps
// multiple ranges in flight (pipelining) and bounds sequencer-side
// latency; at low rate the per-tick flush bounds latency instead.
const rangeFlushThreshold = 256

// offerTotal is the sequencer half of total-order reception: when this
// node sequences the message's shard, the message joins the shard's open
// seq-run for its sender and receives a slot at the next flush. Runs
// grow while a sender's sequence numbers on the shard stay contiguous,
// so ordering metadata is O(runs), not O(messages).
func (e *Engine) offerTotal(shard int, msg *wire.Message) {
	if e.frozen || e.view.Size() == 0 || e.sequencerOf(shard) != e.env.Self() {
		// No new assignments during a view change: every slot assigned
		// before the freeze is reflected in the sequencer's own
		// delivered-slot count, so the flush-convergence check forces
		// all members to catch up; a slot assigned after would escape
		// the check. Unassigned messages drain at SetView.
		return
	}
	sh := &e.shards[shard]
	e.met.ordersSent.Inc()
	if e.cfg.DisableBatching {
		// Legacy per-slot path (T3 ablation): assign and announce
		// immediately, one KindOrder datagram per message per member.
		slot := sh.seqSlot
		sh.seqSlot++
		e.broadcastOrder(slot, msgKey{sender: msg.Sender, seq: msg.Seq})
		e.admitRange(wire.OrderRange{
			SlotFrom: slot, Sender: msg.Sender, SeqFrom: msg.Seq, Count: 1,
		})
		return
	}
	if i, ok := sh.openRun[msg.Sender]; ok {
		if r := &sh.assign[i]; r.SeqFrom+uint64(r.Count) == msg.Seq {
			r.Count++
			sh.assignMsgs++
			e.maybeFlushMidTick(sh)
			return
		}
	}
	sh.assign = append(sh.assign, wire.OrderRange{
		Shard: uint8(shard), Sender: msg.Sender, SeqFrom: msg.Seq, Count: 1,
	})
	sh.openRun[msg.Sender] = len(sh.assign) - 1
	sh.assignMsgs++
	e.maybeFlushMidTick(sh)
}

// maybeFlushMidTick flushes between ticks once enough assignments are
// pending — the pipelining half of range ordering — and immediately in a
// singleton view, where announcements reach nobody and deferring would
// only delay local delivery.
func (e *Engine) maybeFlushMidTick(sh *shardState) {
	if sh.assignMsgs >= rangeFlushThreshold || e.view.Size() == 1 {
		e.flushOrders()
	}
}

// broadcastOrder announces one slot assignment to the other members
// (legacy per-slot path, DisableBatching only).
func (e *Engine) broadcastOrder(slot uint64, key msgKey) {
	for _, m := range e.view.Members {
		if m == e.env.Self() {
			continue
		}
		e.env.Send(m, &wire.Message{
			Kind:   wire.KindOrder,
			Group:  e.cfg.Group,
			View:   e.view.ID,
			Sender: key.sender,
			Seq:    key.seq,
			Aux:    slot,
		})
	}
}

// onOrder records one legacy per-slot assignment (shard 0).
func (e *Engine) onOrder(msg *wire.Message) {
	e.admitRange(wire.OrderRange{
		SlotFrom: msg.Aux, Sender: msg.Sender, SeqFrom: msg.Seq, Count: 1,
	})
	e.drainTotal()
}

// onOrderBatch records every assignment in a legacy aggregated
// announcement (shard 0), then drains once.
func (e *Engine) onOrderBatch(msg *wire.Message) {
	entries, _, err := wire.DecodeOrderBatch(msg.Body)
	if err != nil {
		return
	}
	for _, o := range entries {
		e.admitRange(wire.OrderRange{
			SlotFrom: o.Slot, Sender: o.Sender, SeqFrom: o.Seq, Count: 1,
		})
	}
	e.drainTotal()
}

// onOrderRange admits every ordering unit and merge directive in a
// pipelined range announcement, then drains once.
func (e *Engine) onOrderRange(msg *wire.Message) {
	rs, ms, _, err := wire.AppendDecodedOrderRanges(e.decRanges[:0], e.decMerges[:0], msg.Body)
	if err != nil {
		return
	}
	e.decRanges, e.decMerges = rs, ms
	for _, r := range rs {
		e.admitRange(r)
	}
	for _, m := range ms {
		e.admitMerge(m)
	}
	// Units relayed by a foreign sequencer (Aux marks the relay; recovery
	// replies share the wire kind but carry Aux 0) are queued for the
	// coordinator's combined rebroadcast — the rest of the group learns
	// them from the same datagrams as the merge directives covering them.
	if msg.Aux == orderRelayTag && e.nshards > 1 &&
		e.view.Coordinator() == e.env.Self() {
		e.pendRanges = append(e.pendRanges, rs...)
	}
	// The coordinator covers other shards' decisions with merge
	// directives as they arrive; push them out without waiting for the
	// tick once enough accumulate, so cross-shard delivery pipelines at
	// the same cadence as the shard announcements feeding it.
	if len(e.pendMerge)+len(e.pendRanges) >= rangeFlushThreshold {
		e.flushOrders()
	}
	e.drainTotal()
}

// admitRange installs one immutable ordering unit into its shard's
// decision log. A unit starting below decideNext is a duplicate in full:
// units are never split or re-coalesced after flush, so partial overlap
// cannot occur. At the view coordinator each newly contiguous unit also
// extends the global merge stream when sharding is on. Callers drain.
func (e *Engine) admitRange(r wire.OrderRange) {
	if int(r.Shard) >= len(e.shards) || r.Count == 0 {
		return
	}
	sh := &e.shards[r.Shard]
	if r.SlotFrom < sh.decideNext {
		return // duplicate
	}
	if r.SlotFrom > sh.decideNext {
		if sh.pend == nil {
			sh.pend = make(map[uint64]wire.OrderRange)
		}
		if _, ok := sh.pend[r.SlotFrom]; !ok {
			sh.pend[r.SlotFrom] = r
		}
		return
	}
	grew := uint32(0)
	for {
		sh.log = append(sh.log, r)
		sh.decideNext = r.SlotFrom + uint64(r.Count)
		grew += r.Count
		// A decision proves the data exists: bump the sender's horizon
		// so missing data is NACKed promptly.
		st := e.peer(r.Sender)
		if hz := r.SeqFrom + uint64(r.Count) - 1; hz > st.horizon {
			st.horizon = hz
		}
		nr, ok := sh.pend[sh.decideNext]
		if !ok {
			break
		}
		delete(sh.pend, sh.decideNext)
		r = nr
	}
	if e.nshards > 1 && !e.frozen && e.view.Coordinator() == e.env.Self() {
		e.mergeCover(int(r.Shard), grew)
	}
}

// mergeCover extends the coordinator's global merge stream over count
// newly decided slots of a shard, coalescing with the pending tail when
// it targets the same shard. One coordinator generates the merge stream
// per view, so every member interleaves the shard slot spaces
// identically — that is the whole determinism argument.
func (e *Engine) mergeCover(shard int, count uint32) {
	if n := len(e.pendMerge); n > 0 && int(e.pendMerge[n-1].Shard) == shard {
		e.pendMerge[n-1].Count += count
		e.mergeSeq += uint64(count)
		return
	}
	e.pendMerge = append(e.pendMerge, wire.MergeEntry{
		Shard: uint8(shard), From: e.mergeSeq, Count: count,
	})
	e.mergeSeq += uint64(count)
}

// admitMerge installs one merge directive into the global merge log.
// Like ordering units, broadcast directives are immutable and admitted
// contiguously by From. Callers drain.
func (e *Engine) admitMerge(m wire.MergeEntry) {
	if len(e.shards) < 2 || int(m.Shard) >= len(e.shards) || m.Count == 0 {
		return
	}
	if m.From < e.mergeNext {
		return // duplicate
	}
	if m.From > e.mergeNext {
		if e.mergePend == nil {
			e.mergePend = make(map[uint64]wire.MergeEntry)
		}
		if _, ok := e.mergePend[m.From]; !ok {
			e.mergePend[m.From] = m
		}
		return
	}
	for {
		e.mergeLog = append(e.mergeLog, m)
		e.mergeNext = m.From + uint64(m.Count)
		nm, ok := e.mergePend[e.mergeNext]
		if !ok {
			return
		}
		delete(e.mergePend, e.mergeNext)
		m = nm
	}
}

// drainTotal delivers every queued message whose global order is now
// determined. With one shard the shard log IS the global order; with
// sharding the merge stream dictates how many slots to consume from
// which shard next.
func (e *Engine) drainTotal() {
	if len(e.shards) == 1 {
		e.consumeShard(&e.shards[0], ^uint32(0))
		return
	}
	for e.mergeIdx < len(e.mergeLog) {
		m := e.mergeLog[e.mergeIdx]
		done := e.consumeShard(&e.shards[m.Shard], m.Count-e.mergeOff)
		e.mergeOff += done
		if e.mergeOff == m.Count {
			e.mergeIdx++
			e.mergeOff = 0
			continue
		}
		return // stalled: decision or data still missing on this shard
	}
}

// consumeShard delivers up to max messages from the front of the shard's
// decision log, popping each referenced message off its sender's
// per-shard FIFO queue. Delivery stalls when the next unit is unknown or
// its data has not become reliable yet. Returns the delivered count.
func (e *Engine) consumeShard(sh *shardState, max uint32) uint32 {
	var n uint32
	for n < max && sh.logIdx < len(sh.log) {
		r := sh.log[sh.logIdx]
		st, ok := e.peers[r.Sender]
		if !ok {
			return n
		}
		shard := int(r.Shard)
		q := st.oq[shard]
		h := st.oqHead[shard]
		if h >= len(q) || q[h].Seq != r.SeqFrom+uint64(sh.logOff) {
			return n // data not reliable yet (or not at the queue front)
		}
		m := q[h]
		if h+1 == len(q) {
			st.oq[shard] = q[:0] // reuse the backing array
			st.oqHead[shard] = 0
		} else {
			st.oqHead[shard] = h + 1
		}
		sh.logOff++
		if sh.logOff == r.Count {
			sh.logIdx++
			sh.logOff = 0
		}
		sh.waiting--
		e.pendingData--
		e.totalNext++
		n++
		e.deliver(m)
	}
	return n
}

// peer returns the receive state for a sender, creating it on first use.
func (e *Engine) peer(n id.Node) *peerState {
	st, ok := e.peers[n]
	if !ok {
		st = &peerState{
			next:  1,
			buf:   make(map[uint64]*wire.Message),
			early: make(map[uint64]bool),
		}
		if e.cfg.Ordering == Total {
			st.oq = make([][]*wire.Message, e.nshards)
			st.oqHead = make([]int, e.nshards)
		}
		e.peers[n] = st
	}
	return st
}

// onNack serves a retransmission request for [msg.Seq, msg.Aux] of our own
// traffic (or of any sender's traffic we still hold, which covers flush
// assistance after the original sender failed). A NACK with Sender ==
// id.None is an order request: any member that knows the ordering state
// re-announces it from slot msg.Seq upward; msg.Aux selects the shard
// (or, as mergeReqTag, the merge stream).
func (e *Engine) onNack(from id.Node, msg *wire.Message) {
	if msg.View != e.view.ID {
		return
	}
	e.rec(flightrec.EvNackRecv, uint64(from), msg.Seq)
	if msg.Sender == id.None {
		e.serveOrderRequest(from, msg.Seq, msg.Aux)
		return
	}
	e.serveRetrans(from, msg.Sender, msg.Seq, msg.Aux)
}

// onNackBatch serves every range in a coalesced retransmission request.
func (e *Engine) onNackBatch(from id.Node, msg *wire.Message) {
	if msg.View != e.view.ID {
		return
	}
	ranges, _, err := wire.DecodeNackRanges(msg.Body)
	if err != nil {
		return
	}
	e.rec(flightrec.EvNackRecv, uint64(from), uint64(len(ranges)))
	for _, r := range ranges {
		if r.Sender == id.None {
			// Order request: To carries the shard index (or mergeReqTag),
			// so legacy requests with To == 0 land on shard 0.
			e.serveOrderRequest(from, r.From, r.To)
			continue
		}
		e.serveRetrans(from, r.Sender, r.From, r.To)
	}
}

// orderServeWindow caps ordering units served per request.
const orderServeWindow = 512

// mergeReqTag marks an order request for the global merge stream rather
// than one shard's decision log.
const mergeReqTag = ^uint64(0)

// serveOrderRequest re-announces known ordering state from fromSlot
// upward. Any member that admitted a unit answers, not only its
// sequencer: this keeps total order recoverable after a sequencer crash.
// tag selects a shard's decision log or, as mergeReqTag, the merge
// stream. Units are immutable and re-served verbatim — always in the
// range encoding (per-slot KindOrder replies only under
// DisableBatching), so recovery rides the same compact wire path as
// first announcement.
func (e *Engine) serveOrderRequest(from id.Node, fromSlot, tag uint64) {
	if e.cfg.Ordering != Total {
		return
	}
	if tag == mergeReqTag {
		if len(e.shards) < 2 {
			return
		}
		ms := e.mergeScratch[:0]
		i := sort.Search(len(e.mergeLog), func(i int) bool {
			m := e.mergeLog[i]
			return m.From+uint64(m.Count) > fromSlot
		})
		for ; i < len(e.mergeLog) && len(ms) < orderServeWindow; i++ {
			ms = append(ms, e.mergeLog[i])
		}
		ms = appendPendingMerges(ms, e.mergePend)
		e.mergeScratch = ms
		if len(ms) == 0 {
			return
		}
		e.met.nacksServed.Add(uint64(len(ms)))
		e.bodyScratch = wire.AppendOrderRanges(e.bodyScratch[:0], nil, ms)
		e.env.Send(from, &wire.Message{
			Kind:  wire.KindOrderRange,
			Group: e.cfg.Group,
			View:  e.view.ID,
			Body:  e.bodyScratch,
		})
		return
	}
	if tag >= uint64(len(e.shards)) {
		return
	}
	sh := &e.shards[tag]
	i := sort.Search(len(sh.log), func(i int) bool {
		r := sh.log[i]
		return r.SlotFrom+uint64(r.Count) > fromSlot
	})
	if e.cfg.DisableBatching {
		// Legacy ablation: expand units back into per-slot KindOrder
		// datagrams.
		served := 0
		for ; i < len(sh.log) && served < orderServeWindow; i++ {
			r := sh.log[i]
			for k := uint64(0); k < uint64(r.Count) && served < orderServeWindow; k++ {
				if r.SlotFrom+k < fromSlot {
					continue
				}
				served++
				e.met.nacksServed.Inc()
				e.env.Send(from, &wire.Message{
					Kind:   wire.KindOrder,
					Group:  e.cfg.Group,
					View:   e.view.ID,
					Sender: r.Sender,
					Seq:    r.SeqFrom + k,
					Aux:    r.SlotFrom + k,
				})
			}
		}
		return
	}
	rs := e.rangeScratch[:0]
	for ; i < len(sh.log) && len(rs) < orderServeWindow; i++ {
		rs = append(rs, sh.log[i])
	}
	rs = appendPendingRanges(rs, sh.pend)
	e.rangeScratch = rs
	if len(rs) == 0 {
		return
	}
	e.met.nacksServed.Add(uint64(len(rs)))
	e.bodyScratch = wire.AppendOrderRanges(e.bodyScratch[:0], rs, nil)
	e.env.Send(from, &wire.Message{
		Kind:  wire.KindOrderRange,
		Group: e.cfg.Group,
		View:  e.view.ID,
		Body:  e.bodyScratch,
	})
}

// appendPendingRanges appends a shard's out-of-order units in SlotFrom
// order (deterministic wire bytes under seeded simulation), capped at
// the serve window. Recovery path only — the key sort may allocate.
func appendPendingRanges(dst []wire.OrderRange, pend map[uint64]wire.OrderRange) []wire.OrderRange {
	if len(pend) == 0 || len(dst) >= orderServeWindow {
		return dst
	}
	keys := make([]uint64, 0, len(pend))
	for k := range pend {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if len(dst) >= orderServeWindow {
			break
		}
		dst = append(dst, pend[k])
	}
	return dst
}

// appendPendingMerges is appendPendingRanges for merge directives.
func appendPendingMerges(dst []wire.MergeEntry, pend map[uint64]wire.MergeEntry) []wire.MergeEntry {
	if len(pend) == 0 || len(dst) >= orderServeWindow {
		return dst
	}
	keys := make([]uint64, 0, len(pend))
	for k := range pend {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if len(dst) >= orderServeWindow {
			break
		}
		dst = append(dst, pend[k])
	}
	return dst
}

// serveRetrans answers a retransmission request for [fromSeq, toSeq] of
// sender's traffic that we still hold (covering flush assistance after
// the original sender failed). The responder caps work per range.
func (e *Engine) serveRetrans(from id.Node, sender id.Node, fromSeq, toSeq uint64) {
	for seq := fromSeq; seq <= toSeq && seq-fromSeq < 1024; seq++ {
		key := msgKey{sender: sender, seq: seq}
		m, ok := e.history[key]
		if !ok {
			continue
		}
		r := *m
		r.Kind = wire.KindRetrans
		e.env.Send(from, &r)
		e.met.nacksServed.Inc()
		e.rec(flightrec.EvRetransmit, uint64(sender), seq)
	}
}

// onStable merges a member's ack vector and garbage-collects stable state.
func (e *Engine) onStable(from id.Node, msg *wire.Message) {
	if msg.View != e.view.ID || !e.view.Contains(from) {
		return
	}
	acks, _, err := wire.DecodeAckVector(msg.Body)
	if err != nil {
		return
	}
	e.mergeAckRow(from, acks)
}

// mergeAckRow merges a member's ack vector — from standalone gossip or
// piggybacked on data — into the stability matrix. The merge keeps the
// per-sender maximum: acknowledgments only grow within a view, so a
// reordered older vector must never regress the matrix (it would delay
// garbage collection at best and, after a piggyback, resurrect rows the
// newer vector already superseded).
func (e *Engine) mergeAckRow(from id.Node, acks []wire.AckEntry) {
	row, ok := e.ackMatrix[from]
	if !ok {
		row = make(map[id.Node]uint64, len(acks))
		e.ackMatrix[from] = row
	}
	for _, a := range acks {
		if a.Seq > row[a.Sender] {
			row[a.Sender] = a.Seq
		}
		// The vector also reveals the sender's horizon: if a member
		// has delivered seq s from some sender, s messages exist.
		st := e.peer(a.Sender)
		if a.Seq > st.horizon {
			st.horizon = a.Seq
		}
	}
	// Piggybacked vectors arrive with every data datagram; running the
	// O(senders × members) collection on each would dominate dense
	// traffic. Pruning every few merges (plus every stability tick and
	// before each flush) keeps the history bounded at a fraction of the
	// cost.
	// A blocked flow window overrides the throttle: the sender is stalled
	// waiting for exactly this collection, so run it on every merge until
	// the window reopens.
	if e.ackMerges++; e.ackMerges >= 8 || e.flowBlocked {
		e.ackMerges = 0
		e.collectStable()
	}
}

// ackVector builds this member's stability row in a fresh slice; see
// appendAckRows.
func (e *Engine) ackVector() []wire.AckEntry {
	return e.appendAckRows(make([]wire.AckEntry, 0, len(e.peers)))
}

// appendAckRows appends this member's stability row to dst: for every
// sender with receive state, the highest contiguously delivered sequence
// number. The local send stream appears as acked[self] = nextSend, since
// a sender delivers its own messages on send.
func (e *Engine) appendAckRows(dst []wire.AckEntry) []wire.AckEntry {
	for n, st := range e.peers {
		dst = append(dst, wire.AckEntry{Sender: n, Seq: st.next - 1})
	}
	// Deterministic wire bytes, independent of map iteration order. The
	// insertion sort keeps the per-multicast piggyback path free of the
	// closure and interface allocations sort.Slice would add.
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].Sender < dst[j-1].Sender; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// collectStable prunes history entries acknowledged by every view member.
// Per sender it computes the stability floor — the minimum acknowledged
// sequence across the view — and deletes the [histMin, floor] prefix by
// key. This runs on every ack-vector merge (including piggybacks on each
// data message), so the cost must be O(senders × members) plus the
// entries actually freed; the previous whole-map scan made dense traffic
// quadratic in the message count and dominated sustained-throughput runs.
func (e *Engine) collectStable() {
	if len(e.view.Members) == 0 || len(e.history) == 0 {
		return
	}
	self := e.env.Self()
	for sender, lo := range e.histMin {
		floor := ^uint64(0)
		for _, m := range e.view.Members {
			var acked uint64
			if m == self {
				if st, ok := e.peers[sender]; ok {
					acked = st.next - 1
				}
			} else {
				acked = e.ackMatrix[m][sender]
			}
			if acked < floor {
				floor = acked
			}
		}
		hi := e.histMax[sender]
		if floor > hi {
			floor = hi
		}
		trackBytes := sender == self && e.cfg.FlowWindowBytes > 0
		for seq := lo; seq <= floor; seq++ {
			k := msgKey{sender: sender, seq: seq}
			if trackBytes {
				if m, ok := e.history[k]; ok {
					e.flowBytes -= len(m.Body)
				}
			}
			delete(e.history, k)
		}
		if floor < lo {
			continue
		}
		if floor == hi {
			delete(e.histMin, sender)
			delete(e.histMax, sender)
		} else {
			e.histMin[sender] = floor + 1
		}
	}
	e.maybeReopenFlow()
}

// OnTick flushes aggregated sequencer orders, sends coalesced NACKs and
// gossips stability when the local vector warrants it.
func (e *Engine) OnTick(now time.Time) {
	if e.view.ID == 0 {
		return
	}
	e.flushOrders()
	if e.cfg.DisableSuppression {
		e.scanGaps(now)
	} else {
		e.scanGapsSuppressed(now)
		e.fireRepairs(now)
	}
	e.scanOrderGaps(now)
	e.flushNacks()
	if now.Sub(e.lastStableTry) >= e.cfg.StabilizeEvery {
		e.lastStableTry = now
		// Quiescent suppression: skip the gossip when the vector already
		// went out unchanged (by earlier gossip or piggybacked on data),
		// but re-send after StableKeepalive so a lost final vector still
		// reaches everyone and history buffers drain.
		due := now.Sub(e.lastGossip) >= e.cfg.StabilizeEvery
		if e.cfg.DisableBatching ||
			(due && (e.ackDirty || now.Sub(e.lastGossip) >= e.cfg.StableKeepalive)) {
			e.lastGossip = now
			e.ackDirty = false
			e.gossipStability()
		}
		// Collect locally too: a singleton view receives no gossip, yet
		// its history must still drain to empty.
		e.collectStable()
		// Stability lag: how many delivered messages are still waiting
		// for every member's acknowledgment, sampled once per stability
		// period (after collection, so it measures the residue).
		e.met.stabilityLag.Observe(float64(len(e.history)))
		// Slow-receiver evaluation rides the same cadence: the matrix it
		// reads only changes meaningfully between stability rounds.
		e.evalSlow()
	}
	e.met.historyLen.Set(int64(len(e.history)))
	e.met.flowOcc.Set(int64(e.FlowOccupancy()))
}

// flushOrders is the pipelined range flush: the sequencer numbers the
// seq-runs accumulated since the last flush with contiguous slot ranges,
// admits them locally — the units become immutable here — and broadcasts
// them as KindOrderRange datagrams together with any merge directives
// the coordinator owes, without waiting for delivery of earlier ranges.
// While frozen no new slots are assigned, but directives covering
// pre-freeze decisions still go out.
func (e *Engine) flushOrders() {
	if e.cfg.Ordering != Total || e.cfg.DisableBatching || e.view.ID == 0 {
		return
	}
	rs := e.rangeScratch[:0]
	if !e.frozen {
		for s := range e.shards {
			sh := &e.shards[s]
			if len(sh.assign) == 0 {
				continue
			}
			for i := range sh.assign {
				sh.assign[i].SlotFrom = sh.seqSlot
				sh.seqSlot += uint64(sh.assign[i].Count)
				rs = append(rs, sh.assign[i])
			}
			sh.assign = sh.assign[:0]
			sh.assignMsgs = 0
			clear(sh.openRun)
		}
		// Self-admission happens at flush, not assignment, so every
		// member's decision log holds the same immutable units and
		// recovery can re-serve them verbatim. At the coordinator this
		// also extends pendMerge, so the merge directives covering these
		// ranges ride the same datagrams.
		for _, r := range rs {
			e.admitRange(r)
		}
	}
	e.rangeScratch = rs
	if e.nshards > 1 {
		if coord := e.view.Coordinator(); coord != e.env.Self() {
			// Relay mode: a non-coordinator sequencer hands its new
			// units to the coordinator alone, which folds them into its
			// next combined range+merge broadcast. One unicast plus one
			// shared broadcast replaces a per-shard broadcast plus the
			// coordinator's separate merge broadcast.
			if len(rs) > 0 {
				e.relayOrderRanges(coord, rs)
			}
			e.drainTotal()
			return
		}
		if len(e.pendRanges) > 0 {
			rs = append(rs, e.pendRanges...)
			e.rangeScratch = rs
			e.pendRanges = e.pendRanges[:0]
		}
	}
	ms := e.pendMerge
	if len(rs) == 0 && len(ms) == 0 {
		return
	}
	e.broadcastOrderRanges(rs, ms)
	for _, m := range ms {
		e.admitMerge(m)
	}
	e.pendMerge = e.pendMerge[:0]
	e.drainTotal()
}

// orderRelayTag in a KindOrderRange's Aux marks a sequencer-to-
// coordinator relay; the coordinator rebroadcasts those units to the
// group. Recovery replies leave Aux 0 so they are never re-relayed.
const orderRelayTag = 1

// relayOrderRanges unicasts freshly flushed ordering units to the view
// coordinator, chunked under the datagram limit.
func (e *Engine) relayOrderRanges(coord id.Node, rs []wire.OrderRange) {
	const chunkMax = 1024
	for len(rs) > 0 {
		nr := len(rs)
		if nr > chunkMax {
			nr = chunkMax
		}
		e.bodyScratch = wire.AppendOrderRanges(e.bodyScratch[:0], rs[:nr], nil)
		e.env.Send(coord, &wire.Message{
			Kind:  wire.KindOrderRange,
			Group: e.cfg.Group,
			View:  e.view.ID,
			Aux:   orderRelayTag,
			Body:  e.bodyScratch,
		})
		e.met.orderRanges.Add(uint64(nr))
		rs = rs[nr:]
	}
}

// broadcastOrderRanges announces ordering units and merge directives to
// every other member, chunked under the datagram limit.
func (e *Engine) broadcastOrderRanges(rs []wire.OrderRange, ms []wire.MergeEntry) {
	const chunkMax = 1024
	for len(rs) > 0 || len(ms) > 0 {
		nr, nm := len(rs), len(ms)
		if nr > chunkMax {
			nr = chunkMax
		}
		if nm > chunkMax {
			nm = chunkMax
		}
		e.bodyScratch = wire.AppendOrderRanges(e.bodyScratch[:0], rs[:nr], ms[:nm])
		msg := wire.Message{
			Kind:  wire.KindOrderRange,
			Group: e.cfg.Group,
			View:  e.view.ID,
			Body:  e.bodyScratch,
		}
		for _, m := range e.view.Members {
			if m == e.env.Self() {
				continue
			}
			e.env.Send(m, &msg)
		}
		e.met.orderRanges.Add(uint64(nr + nm))
		rs, ms = rs[nr:], ms[nm:]
	}
}

// queueNack records one NACK range for the destination, to go out in the
// tick's coalesced KindNackBatch.
func (e *Engine) queueNack(dst id.Node, r wire.NackRange) {
	e.nackQueue[dst] = append(e.nackQueue[dst], r)
}

// flushNacks sends one KindNackBatch per destination with every range
// queued this tick. Destinations are visited in ID order so the datagram
// sequence is deterministic under a seeded simulation.
func (e *Engine) flushNacks() {
	if len(e.nackQueue) == 0 {
		return
	}
	dsts := make([]id.Node, 0, len(e.nackQueue))
	for d := range e.nackQueue {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, d := range dsts {
		e.bodyScratch = wire.AppendNackRanges(e.bodyScratch[:0], e.nackQueue[d])
		msg := wire.Message{
			Kind:  wire.KindNackBatch,
			Group: e.cfg.Group,
			View:  e.view.ID,
			Body:  e.bodyScratch,
		}
		e.env.Send(d, &msg)
		delete(e.nackQueue, d)
	}
}

// scanOrderGaps requests missing ordering state when reliable messages
// are queued undelivered. Requests go to every member, not only the
// responsible sequencer: after a sequencer crash the survivors
// collectively still know every unit any of them admitted, and whoever
// knows answers. Every shard with queued data is requested from its
// decision horizon; under sharding the merge stream is requested too,
// since either a missing unit or a missing directive can stall delivery.
func (e *Engine) scanOrderGaps(now time.Time) {
	if e.cfg.Ordering != Total || e.pendingData == 0 {
		return
	}
	if e.totalNext > e.orderNackMark {
		e.orderNackBackoff = 0 // delivery advanced since the last request
	}
	ival := e.backoffStretch(e.cfg.ResendAfter, e.orderNackBackoff)
	if e.orderNackBackoff > 0 {
		ival += time.Duration(e.rng.Int63n(int64(ival)/2 + 1))
	}
	if now.Sub(e.lastOrderNack) < ival {
		return
	}
	e.lastOrderNack = now
	e.orderNackMark = e.totalNext
	if e.orderNackBackoff < maxBackoffShift {
		e.orderNackBackoff++
	}
	for _, m := range e.view.Members {
		if m == e.env.Self() {
			continue
		}
		for s := range e.shards {
			sh := &e.shards[s]
			if sh.waiting == 0 {
				continue
			}
			if e.cfg.DisableBatching {
				e.env.Send(m, &wire.Message{
					Kind:   wire.KindNack,
					Group:  e.cfg.Group,
					View:   e.view.ID,
					Sender: id.None, // order request marker
					Seq:    sh.decideNext,
					Aux:    uint64(s),
				})
			} else {
				e.queueNack(m, wire.NackRange{Sender: id.None, From: sh.decideNext, To: uint64(s)})
			}
		}
		if len(e.shards) > 1 {
			e.queueNack(m, wire.NackRange{Sender: id.None, From: e.mergeNext, To: mergeReqTag})
		}
		e.met.nacksSent.Inc()
		e.rec(flightrec.EvNackSent, uint64(id.None), e.totalNext)
	}
}

// scanGaps NACKs senders with reception gaps older than ResendAfter.
// Re-NACKs toward a sender that keeps not answering back off
// exponentially with jitter up to Suppression.BackoffCap — a permanently
// dead sender must not draw unbounded NACK traffic — and the backoff
// resets as soon as the stream progresses. Senders are visited in ID
// order so the datagram sequence is the same on every run of a seeded
// simulation.
func (e *Engine) scanGaps(now time.Time) {
	senders := make([]id.Node, 0, len(e.peers))
	for n := range e.peers {
		senders = append(senders, n)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	for _, n := range senders {
		st := e.peers[n]
		if n == e.env.Self() {
			continue
		}
		if st.horizon < st.next {
			st.nackBackoff = 0
			continue // no known gap
		}
		if st.next > st.nackMark {
			st.nackBackoff = 0 // the stream moved since the last NACK
		}
		ival := e.backoffStretch(e.cfg.ResendAfter, st.nackBackoff)
		if st.nackBackoff > 0 {
			// Jitter only the backed-off retries; the first NACK keeps
			// the prompt fixed-interval recovery latency.
			ival += time.Duration(e.rng.Int63n(int64(ival)/2 + 1))
		}
		if now.Sub(st.lastNack) < ival {
			continue
		}
		st.lastNack = now
		st.nackMark = st.next
		if st.nackBackoff < maxBackoffShift {
			st.nackBackoff++
		}
		// Request the full missing range; the responder caps work.
		if e.cfg.DisableBatching {
			e.env.Send(n, &wire.Message{
				Kind:   wire.KindNack,
				Group:  e.cfg.Group,
				View:   e.view.ID,
				Sender: n,
				Seq:    st.next,
				Aux:    st.horizon,
			})
		} else {
			e.queueNack(n, wire.NackRange{Sender: n, From: st.next, To: st.horizon})
		}
		e.met.nacksSent.Inc()
		e.rec(flightrec.EvNackSent, uint64(n), st.next)
	}
}

// gossipStability broadcasts this member's ack vector.
func (e *Engine) gossipStability() {
	e.met.gossipAcks.Inc()
	e.rec(flightrec.EvGossip, uint64(len(e.history)), 0)
	e.ackScratch = e.appendAckRows(e.ackScratch[:0])
	e.bodyScratch = wire.AppendAckVector(e.bodyScratch[:0], e.ackScratch)
	msg := wire.Message{
		Kind:  wire.KindStable,
		Group: e.cfg.Group,
		View:  e.view.ID,
		Body:  e.bodyScratch,
	}
	for _, m := range e.view.Members {
		if m == e.env.Self() {
			continue
		}
		e.env.Send(m, &msg)
	}
}
