// Package rmcast implements the reliable multicast layer of the
// architecture: sender-sequenced multicast over the unreliable datagram
// transport, with negative-acknowledgment loss recovery, four delivery
// orderings (unordered, FIFO, causal, total), receiver-driven stability
// tracking for buffer garbage collection, and a flush hook that lets the
// membership layer approximate virtual synchrony across view changes.
//
// # Protocol sketch
//
// Every member numbers its multicasts per view (1, 2, ...). Receivers
// track the contiguous prefix received from each sender; gaps detected via
// later messages or via the periodic stability gossip (which carries each
// member's delivery horizon) trigger NACKs to the original sender, which
// answers with retransmissions from its history buffer.
//
// Ordering is layered on top of the reliable per-sender streams:
//
//   - Unordered delivers every message on first receipt.
//   - FIFO delivers each sender's stream in sequence order.
//   - Causal stamps messages with a vector clock over the view's member
//     ranks and delays delivery until causally deliverable.
//   - Total routes all delivery through slots assigned by a sequencer
//     (the view coordinator), giving one agreed delivery order.
//
// Stability gossip (KindStable) carries, for every sender, the highest
// contiguously delivered sequence number. A message acknowledged by every
// view member is stable: history buffers drop it. On a view change the
// membership layer calls Flush, which retransmits every unstable message
// to the proposed membership before the new view is installed.
package rmcast

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"scalamedia/internal/flightrec"
	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/proto"
	"scalamedia/internal/stats"
	"scalamedia/internal/vclock"
	"scalamedia/internal/wire"
)

// Ordering selects the delivery discipline.
type Ordering int

// The delivery orderings, weakest to strongest.
const (
	// Unordered delivers on first receipt, in arrival order.
	Unordered Ordering = iota + 1
	// FIFO delivers each sender's messages in send order.
	FIFO
	// Causal delivers in an order consistent with potential causality.
	Causal
	// Total delivers all messages in one agreed order on all members.
	Total
)

// String returns the ordering's conventional name.
func (o Ordering) String() string {
	switch o {
	case Unordered:
		return "unordered"
	case FIFO:
		return "fifo"
	case Causal:
		return "causal"
	case Total:
		return "total"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Default protocol timing.
const (
	DefaultResendAfter    = 40 * time.Millisecond
	DefaultStabilizeEvery = 150 * time.Millisecond
	// DefaultKeepaliveFactor scales StabilizeEvery into the default
	// StableKeepalive: how long a member with an unchanged ack vector
	// stays silent before re-gossiping anyway.
	DefaultKeepaliveFactor = 4
)

// Errors returned by Multicast.
var (
	// ErrNoView reports a multicast attempted before a view installed.
	ErrNoView = errors.New("rmcast: no view installed")
	// ErrPayloadTooLarge reports a payload above wire.MaxBody.
	ErrPayloadTooLarge = errors.New("rmcast: payload too large")
)

// Delivery is one message handed to the application.
type Delivery struct {
	Group   id.Group
	Sender  id.Node
	Seq     uint64
	View    id.View
	Payload []byte
}

// Config parameterizes a multicast engine.
type Config struct {
	// Group scopes all traffic.
	Group id.Group
	// Ordering selects the delivery discipline. Defaults to FIFO.
	Ordering Ordering
	// OnDeliver receives application messages. Called from the event
	// loop; must not block.
	OnDeliver func(Delivery)
	// ResendAfter is the gap age that triggers a NACK and the re-NACK
	// interval. Defaults to DefaultResendAfter.
	ResendAfter time.Duration
	// StabilizeEvery is the stability gossip period. Defaults to
	// DefaultStabilizeEvery.
	StabilizeEvery time.Duration
	// StableKeepalive bounds gossip suppression: a member whose ack
	// vector has not changed — and so skips its periodic gossip — still
	// re-broadcasts it after this long, repairing lost final vectors so
	// history buffers drain even in quiescence. Defaults to
	// DefaultKeepaliveFactor * StabilizeEvery.
	StableKeepalive time.Duration
	// DisableBatching reverts control traffic to one datagram per event:
	// singleton NACKs, one ORDER announcement per slot, and stability
	// gossip on every period regardless of change. The zero value —
	// batching on — coalesces NACK ranges per (destination, tick),
	// aggregates sequencer slots into one KindOrderBatch per tick, and
	// suppresses gossip while the ack vector is unchanged. The unbatched
	// mode exists for the T3 ablation baseline.
	DisableBatching bool
	// NoPiggyback stops attaching the ack vector to outgoing data
	// messages. With piggybacking on (the zero value), active senders
	// propagate stability for free and skip standalone gossip entirely.
	NoPiggyback bool
	// Metrics, when non-nil, receives live protocol counters under names
	// prefixed with MetricsPrefix. When nil the engine still counts (the
	// Counters accessor keeps working) but registers nothing.
	Metrics *stats.Registry
	// MetricsPrefix namespaces this engine's metrics; defaults to
	// "rmcast.". The hierarchical layer runs two engines per relay and
	// distinguishes them as "rmcast.local." and "rmcast.wide.".
	MetricsPrefix string
	// Flight, when non-nil, records protocol milestone events (sends,
	// deliveries, NACKs, retransmissions, gossip) into the flight
	// recorder ring. Nil disables recording at zero cost.
	Flight *flightrec.Recorder
	// Suppression tunes the SRM-style scalable loss recovery that is on
	// by default: randomized suppression timers for multicast repair
	// requests, sampled multicast local repair, duplicate-repair damping
	// and capped exponential request backoff (see suppress.go). Zero
	// fields take defaults.
	Suppression Suppression
	// DisableSuppression reverts loss recovery to the flat baseline:
	// unicast NACKs straight to the original sender, re-fired with
	// capped exponential backoff. The ablation arm for the T7
	// recovery-traffic experiment.
	DisableSuppression bool
	// Distance estimates the one-way delay to a peer, scaling the
	// suppression timers so nearer receivers request (and nearer holders
	// repair) first. Live stacks can wire it to clock-sync RTT samples;
	// nil (or a zero return) falls back to
	// Suppression.DefaultDistance.
	Distance func(id.Node) time.Duration
}

// Counters exposes protocol event counts for tests and experiments.
type Counters struct {
	Sent         uint64 // application multicasts initiated
	Delivered    uint64 // messages handed to OnDeliver
	Duplicates   uint64 // redundant receptions discarded
	NacksSent    uint64
	NacksServed  uint64 // retransmissions sent in response to NACKs
	Retransmits  uint64 // retransmissions received
	FlushResends uint64 // messages re-sent by Flush
	OrdersSent   uint64 // sequencer slot assignments broadcast
	PiggyAcks    uint64 // ack vectors piggybacked on outgoing data
	GossipAcks   uint64 // standalone stability gossip broadcasts

	// Scalable-recovery counters (see suppress.go). NacksSent and
	// NacksServed count request/repair events — one per multicast, not
	// per fan-out datagram — so flat and suppressed runs compare under
	// the IP-multicast cost model.
	NacksSuppressed   uint64 // pending requests cancelled on hearing an equivalent one
	RepairsSuppressed uint64 // armed repair timers cancelled on hearing the repair
	LocalRepairs      uint64 // repairs served by a member other than the original sender
}

// engMetrics is the engine's live counter set. The pointers are resolved
// once at construction — against the configured registry, or as
// unregistered standalone atomics — so every hot-path increment is a
// single atomic add with no map lookup. One source of truth: Counters()
// reads these same atomics back.
type engMetrics struct {
	sent         *stats.Counter
	delivered    *stats.Counter
	duplicates   *stats.Counter
	nacksSent    *stats.Counter
	nacksServed  *stats.Counter
	retransmits  *stats.Counter
	flushResends *stats.Counter
	ordersSent   *stats.Counter
	piggyAcks    *stats.Counter
	gossipAcks   *stats.Counter

	nacksSuppressed   *stats.Counter
	repairsSuppressed *stats.Counter
	localRepairs      *stats.Counter

	historyLen   *stats.Gauge     // delivered-but-unstable messages buffered
	stabilityLag *stats.Histogram // history depth sampled at stability rounds
}

// newEngMetrics resolves the counter set against reg (nil for standalone
// counters visible only through Counters()).
func newEngMetrics(reg *stats.Registry, prefix string) engMetrics {
	if reg == nil {
		return engMetrics{
			sent:              &stats.Counter{},
			delivered:         &stats.Counter{},
			duplicates:        &stats.Counter{},
			nacksSent:         &stats.Counter{},
			nacksServed:       &stats.Counter{},
			retransmits:       &stats.Counter{},
			flushResends:      &stats.Counter{},
			ordersSent:        &stats.Counter{},
			piggyAcks:         &stats.Counter{},
			gossipAcks:        &stats.Counter{},
			nacksSuppressed:   &stats.Counter{},
			repairsSuppressed: &stats.Counter{},
			localRepairs:      &stats.Counter{},
			historyLen:        &stats.Gauge{},
			stabilityLag:      stats.NewReservoirHistogram(0),
		}
	}
	return engMetrics{
		sent:              reg.Counter(prefix + "sent"),
		delivered:         reg.Counter(prefix + "delivered"),
		duplicates:        reg.Counter(prefix + "duplicates"),
		nacksSent:         reg.Counter(prefix + "nacks_sent"),
		nacksServed:       reg.Counter(prefix + "nacks_served"),
		retransmits:       reg.Counter(prefix + "retransmits_recv"),
		flushResends:      reg.Counter(prefix + "flush_resends"),
		ordersSent:        reg.Counter(prefix + "orders_sent"),
		piggyAcks:         reg.Counter(prefix + "acks_piggybacked"),
		gossipAcks:        reg.Counter(prefix + "acks_gossiped"),
		nacksSuppressed:   reg.Counter(prefix + "nacks_suppressed"),
		repairsSuppressed: reg.Counter(prefix + "repairs_suppressed"),
		localRepairs:      reg.Counter(prefix + "local_repairs"),
		historyLen:        reg.Gauge(prefix + "history_len"),
		stabilityLag:      reg.Histogram(prefix + "stability_lag"),
	}
}

// msgKey identifies one multicast within a view.
type msgKey struct {
	sender id.Node
	seq    uint64
}

// peerState tracks the reliable stream from one sender.
type peerState struct {
	next    uint64                   // lowest sequence number not yet contiguously received
	buf     map[uint64]*wire.Message // received out-of-order messages >= next
	early   map[uint64]bool          // delivered ahead of order (Unordered mode)
	horizon uint64                   // highest sequence known to exist

	// Flat-recovery state: unicast re-NACK pacing with capped
	// exponential backoff (DisableSuppression mode).
	lastNack    time.Time
	nackBackoff uint8  // backoff exponent of the next re-NACK interval
	nackMark    uint64 // next at the last NACK; progress past it resets backoff

	// Suppressed-recovery state: the armed randomized request timer.
	reqAt      time.Time // when the pending repair request fires; zero = disarmed
	reqBackoff uint8     // backoff exponent of the next request interval
	reqMark    uint64    // next at the last request; progress past it resets backoff
	reqAttempt uint32    // request attempts for this stream, rotates responder sampling
}

// Engine is the reliable multicast state machine for one node and group.
// It implements proto.Handler and must only be used from the event loop.
type Engine struct {
	env proto.Env
	cfg Config

	view member.View
	rank int // local rank in view, -1 if none

	// Sending state (per view).
	nextSend uint64
	vc       vclock.VC // causal clock over view ranks

	// Receiving state (per view).
	peers map[id.Node]*peerState

	// History of delivered-but-unstable messages for flush and NACK
	// service, keyed per view.
	history map[msgKey]*wire.Message

	// Causal holding pool: reliable-but-not-yet-deliverable messages.
	causalPool []*wire.Message

	// Total-order state.
	totalNext uint64            // next slot to deliver
	orders    map[uint64]msgKey // slot -> message
	ordered   map[msgKey]bool   // messages already assigned a slot (sequencer)
	stash     map[msgKey]*wire.Message
	seqSlot   uint64 // sequencer: next slot to assign

	// Stability: per-member ack vectors.
	ackMatrix     map[id.Node]map[id.Node]uint64
	lastGossip    time.Time // last time the local vector went out (gossip or piggyback)
	lastStableTry time.Time // last periodic gossip consideration
	ackDirty      bool      // local vector changed since it last went out
	lastOrderNack time.Time

	// Batched control traffic, flushed per tick.
	pendingOrders []wire.OrderEntry            // sequencer slots awaiting broadcast
	nackQueue     map[id.Node][]wire.NackRange // coalesced NACKs per destination

	// Reusable scratch to keep the steady-state send path allocation-free.
	ackScratch   []wire.AckEntry
	orderScratch []wire.OrderEntry
	bodyScratch  []byte

	// Messages for a view newer than the installed one, replayed after
	// installation.
	futureBuf []*wire.Message

	// View-change freeze: while a view proposal is being flushed, new
	// multicasts and new sequencer slot assignments are deferred so the
	// membership layer's flush-convergence check stays authoritative
	// (see Freeze).
	frozen    bool
	sendQueue [][]byte

	// Scalable recovery (see suppress.go): normalized tuning, armed
	// repair timers per original sender, the duplicate-repair damping
	// memory, and this node's private deterministic randomness for the
	// suppression timer draws.
	sup           Suppression
	repairs       map[id.Node]*repairJob
	recentRepairs map[msgKey]time.Time
	rng           *rand.Rand

	// Total-order slot re-request backoff (mirrors the per-sender NACK
	// backoff; resets when totalNext advances).
	orderNackBackoff uint8
	orderNackMark    uint64

	met engMetrics
}

var _ proto.Handler = (*Engine)(nil)

// New returns a multicast engine with no view. Wire it to a membership
// engine by calling SetView from Config.OnView and Flush from
// Config.OnFlush.
func New(env proto.Env, cfg Config) *Engine {
	if cfg.Ordering == 0 {
		cfg.Ordering = FIFO
	}
	if cfg.ResendAfter <= 0 {
		cfg.ResendAfter = DefaultResendAfter
	}
	if cfg.StabilizeEvery <= 0 {
		cfg.StabilizeEvery = DefaultStabilizeEvery
	}
	if cfg.StableKeepalive <= 0 {
		cfg.StableKeepalive = DefaultKeepaliveFactor * cfg.StabilizeEvery
	}
	if cfg.MetricsPrefix == "" {
		cfg.MetricsPrefix = "rmcast."
	}
	return &Engine{
		env:           env,
		cfg:           cfg,
		met:           newEngMetrics(cfg.Metrics, cfg.MetricsPrefix),
		rank:          -1,
		peers:         make(map[id.Node]*peerState),
		history:       make(map[msgKey]*wire.Message),
		orders:        make(map[uint64]msgKey),
		ordered:       make(map[msgKey]bool),
		stash:         make(map[msgKey]*wire.Message),
		ackMatrix:     make(map[id.Node]map[id.Node]uint64),
		nackQueue:     make(map[id.Node][]wire.NackRange),
		sup:           cfg.Suppression.withDefaults(),
		repairs:       make(map[id.Node]*repairJob),
		recentRepairs: make(map[msgKey]time.Time),
		// Seeded from the node identity only, so a seeded simulation —
		// and any rerun of it — draws the same timer sequence.
		rng: rand.New(rand.NewSource(int64(mix64(uint64(env.Self()) + 0x5eed)))),
	}
}

// Counters returns a copy of the protocol event counters.
func (e *Engine) Counters() Counters {
	return Counters{
		Sent:         e.met.sent.Value(),
		Delivered:    e.met.delivered.Value(),
		Duplicates:   e.met.duplicates.Value(),
		NacksSent:    e.met.nacksSent.Value(),
		NacksServed:  e.met.nacksServed.Value(),
		Retransmits:  e.met.retransmits.Value(),
		FlushResends: e.met.flushResends.Value(),
		OrdersSent:   e.met.ordersSent.Value(),
		PiggyAcks:    e.met.piggyAcks.Value(),
		GossipAcks:   e.met.gossipAcks.Value(),

		NacksSuppressed:   e.met.nacksSuppressed.Value(),
		RepairsSuppressed: e.met.repairsSuppressed.Value(),
		LocalRepairs:      e.met.localRepairs.Value(),
	}
}

// rec stamps one flight-recorder event with this node's identity and
// clock; free when no recorder is configured.
func (e *Engine) rec(code flightrec.Code, a, b uint64) {
	if e.cfg.Flight != nil {
		e.cfg.Flight.Record(uint64(e.env.Self()), e.env.Now().UnixMilli(), code, a, b)
	}
}

// View returns the view the engine currently operates in.
func (e *Engine) View() member.View { return e.view }

// SetView installs a new view, resetting all per-view protocol state.
// Sequence spaces, vector clocks and total-order slots are per view; the
// preceding Flush has already pushed unstable traffic to the survivors.
func (e *Engine) SetView(v member.View) {
	e.drainForViewChange()
	e.view = v
	e.rank = v.Rank(e.env.Self())
	e.nextSend = 0
	e.vc = vclock.New(v.Size())
	e.peers = make(map[id.Node]*peerState)
	e.history = make(map[msgKey]*wire.Message)
	e.causalPool = nil
	e.totalNext = 0
	e.orders = make(map[uint64]msgKey)
	e.ordered = make(map[msgKey]bool)
	e.stash = make(map[msgKey]*wire.Message)
	e.seqSlot = 0
	e.ackMatrix = make(map[id.Node]map[id.Node]uint64)
	e.frozen = false
	e.ackDirty = false
	e.pendingOrders = e.pendingOrders[:0]
	e.nackQueue = make(map[id.Node][]wire.NackRange)
	e.repairs = make(map[id.Node]*repairJob)
	e.recentRepairs = make(map[msgKey]time.Time)
	e.orderNackBackoff = 0
	e.orderNackMark = 0

	// Replay buffered messages that were sent in this view.
	pending := e.futureBuf
	e.futureBuf = nil
	for _, m := range pending {
		if m.View == v.ID {
			e.dispatch(m)
		} else if m.View > v.ID {
			e.futureBuf = append(e.futureBuf, m)
		}
	}

	// Multicasts deferred by the freeze go out in the new view; a node
	// the new view excludes drops them (it was evicted mid-send).
	queued := e.sendQueue
	e.sendQueue = nil
	if e.rank >= 0 {
		for _, p := range queued {
			e.Multicast(p)
		}
	}
}

// drainForViewChange resolves messages still blocked on ordering when a
// view change commits. After the membership layer's flush-convergence
// gate every surviving member holds the same blocked set, so the policy
// below keeps delivery sequences identical across members:
//
//   - Total: stashed messages whose slot assignment died with the
//     sequencer are delivered in (sender, seq) order — the same order
//     everywhere, appended after the same delivered-slot prefix.
//   - Causal: pool remnants are dropped. A remnant's dependency was
//     delivered by no survivor (a live holder would have flushed it), so
//     delivering the remnant would violate causality, and dropping it is
//     consistent across members.
//   - FIFO/unordered gap buffers are dropped for the same reason: the
//     gap message exists nowhere among the survivors.
func (e *Engine) drainForViewChange() {
	if e.view.ID == 0 || e.cfg.Ordering != Total || len(e.stash) == 0 {
		return
	}
	keys := make([]msgKey, 0, len(e.stash))
	for k := range e.stash {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sender != keys[j].sender {
			return keys[i].sender < keys[j].sender
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		m := e.stash[k]
		delete(e.stash, k)
		e.deliver(m)
	}
}

// Freeze defers new multicasts and new sequencer slot assignments until
// the next view installs. The membership layer calls it when a view
// change begins: everything this engine did before the freeze is visible
// in its stability vector (StabilityVector), so the coordinator's
// flush-convergence check sees a complete picture, and nothing sent after
// it can slip into the old view behind the check's back. Deferred
// multicasts are sent in the next view; SetView lifts the freeze.
func (e *Engine) Freeze() { e.frozen = true }

// StabilityVector returns this member's delivery state for the membership
// layer's flush-convergence gate: the per-sender contiguously delivered
// counts and, under total ordering, the number of slots delivered.
func (e *Engine) StabilityVector() ([]wire.AckEntry, uint64) {
	return e.ackVector(), e.totalNext
}

// HistoryLen returns the number of delivered-but-unstable messages held,
// which the chaos harness uses to check stability garbage collection.
func (e *Engine) HistoryLen() int { return len(e.history) }

// Flush retransmits every unstable message in the local history to the
// members of the proposed view. The membership layer calls it between
// ViewPropose and FlushOK; receivers discard duplicates, so over-sending
// is safe.
func (e *Engine) Flush(proposed member.View) {
	if e.view.ID == 0 {
		return
	}
	// Iterate in (sender, seq) order so the datagram sequence — and with
	// it a seeded simulation — is identical on every run.
	keys := make([]msgKey, 0, len(e.history))
	for k := range e.history {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sender != keys[j].sender {
			return keys[i].sender < keys[j].sender
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		// One copy per message, not per destination: Env.Send encodes
		// synchronously and does not retain the message.
		r := *e.history[k]
		r.Kind = wire.KindRetrans
		for _, dst := range proposed.Members {
			if dst == e.env.Self() {
				continue
			}
			e.env.Send(dst, &r)
			e.met.flushResends.Inc()
		}
	}
}

// Multicast sends payload to the current view. The local node delivers
// its own message through the same pipeline as remote receivers.
func (e *Engine) Multicast(payload []byte) error {
	if e.view.ID == 0 || e.rank < 0 {
		return ErrNoView
	}
	if len(payload) > wire.MaxBody {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(payload))
	}
	if e.frozen {
		// A view change is flushing: defer to the next view rather than
		// race the flush-convergence check.
		if len(e.sendQueue) < 4096 {
			e.sendQueue = append(e.sendQueue, append([]byte(nil), payload...))
		}
		return nil
	}
	e.nextSend++
	msg := &wire.Message{
		Kind:   wire.KindData,
		Group:  e.cfg.Group,
		View:   e.view.ID,
		Sender: e.env.Self(),
		Seq:    e.nextSend,
		Body:   append([]byte(nil), payload...),
	}
	switch e.cfg.Ordering {
	case Causal:
		msg.Flags |= wire.FlagCausal
		// Stamp vc+1 for our rank without advancing the local clock;
		// the clock advances when the message is delivered locally,
		// keeping the deliverability test uniform for all receivers.
		ts := e.vc.Clone()
		ts.Tick(e.rank)
		msg.TS = ts
	case Total:
		msg.Flags |= wire.FlagTotalOrder
	}
	e.met.sent.Inc()
	e.rec(flightrec.EvSend, msg.Seq, 0)
	if e.view.Size() > 1 {
		// One outgoing copy for all destinations (Env.Send encodes
		// synchronously); the history copy stays piggyback-free so
		// retransmissions never carry a stale ack vector.
		out := *msg
		if !e.cfg.NoPiggyback {
			e.ackScratch = e.appendAckRows(e.ackScratch[:0])
			if len(e.ackScratch) > 0 {
				out.Flags |= wire.FlagPiggyAck
				out.Acks = e.ackScratch
				e.lastGossip = e.env.Now()
				e.ackDirty = false
				e.met.piggyAcks.Inc()
			}
		}
		for _, m := range e.view.Members {
			if m == e.env.Self() {
				continue
			}
			e.env.Send(m, &out)
		}
	}
	// Local copy through the normal pipeline (it is always in order).
	e.dispatch(msg)
	return nil
}

// OnMessage handles one inbound datagram.
func (e *Engine) OnMessage(from id.Node, msg *wire.Message) {
	if msg.Group != e.cfg.Group {
		return
	}
	switch msg.Kind {
	case wire.KindData, wire.KindRetrans:
		if msg.Kind == wire.KindRetrans {
			e.met.retransmits.Inc()
			if !e.cfg.DisableSuppression {
				e.noteRetrans(msg)
			}
		}
		if msg.Flags&wire.FlagPiggyAck != 0 {
			if msg.View == e.view.ID && e.view.Contains(from) {
				e.mergeAckRow(from, msg.Acks)
			}
			// Strip before the message can reach the history buffer, so
			// retransmissions of it never replay a stale vector.
			msg.Flags &^= wire.FlagPiggyAck
			msg.Acks = nil
		}
		e.routeData(msg)
	case wire.KindNack:
		e.onNack(from, msg)
	case wire.KindNackBatch:
		e.onNackBatch(from, msg)
	case wire.KindRepairReq:
		e.onRepairReq(from, msg)
	case wire.KindOrder, wire.KindOrderBatch:
		e.routeOrder(msg)
	case wire.KindStable:
		e.onStable(from, msg)
	}
}

// routeData drops stale traffic, buffers future-view traffic and
// dispatches current-view traffic.
func (e *Engine) routeData(msg *wire.Message) {
	switch {
	case msg.View == e.view.ID && e.view.ID != 0:
		e.dispatch(msg)
	case msg.View > e.view.ID:
		if len(e.futureBuf) < 4096 {
			e.futureBuf = append(e.futureBuf, msg)
		}
	default:
		e.met.duplicates.Inc() // stale view: already flushed to us
	}
}

func (e *Engine) routeOrder(msg *wire.Message) {
	switch {
	case msg.View == e.view.ID && e.view.ID != 0:
		if msg.Kind == wire.KindOrderBatch {
			e.onOrderBatch(msg)
		} else {
			e.onOrder(msg)
		}
	case msg.View > e.view.ID:
		if len(e.futureBuf) < 4096 {
			e.futureBuf = append(e.futureBuf, msg)
		}
	}
}

// dispatch runs the reliability stage for a current-view message.
func (e *Engine) dispatch(msg *wire.Message) {
	if msg.Kind == wire.KindOrder {
		e.onOrder(msg)
		return
	}
	if msg.Kind == wire.KindOrderBatch {
		e.onOrderBatch(msg)
		return
	}
	st := e.peer(msg.Sender)
	if msg.Seq > st.horizon {
		st.horizon = msg.Seq
	}
	if st.next == 0 {
		st.next = 1
	}
	switch {
	case msg.Seq < st.next:
		e.met.duplicates.Inc()
	case msg.Seq == st.next:
		e.contiguous(msg, st)
		st.next++
		for {
			nxt, ok := st.buf[st.next]
			if !ok {
				break
			}
			delete(st.buf, st.next)
			e.contiguous(nxt, st)
			st.next++
		}
	default: // gap
		if _, dup := st.buf[msg.Seq]; dup || st.early[msg.Seq] {
			e.met.duplicates.Inc()
			return
		}
		st.buf[msg.Seq] = msg
		if e.cfg.Ordering == Unordered {
			// Deliver immediately; remember to skip on gap fill.
			st.early[msg.Seq] = true
			e.deliver(msg)
		}
	}
}

// contiguous processes a message that extends a sender's reliable prefix.
func (e *Engine) contiguous(msg *wire.Message, st *peerState) {
	key := msgKey{sender: msg.Sender, seq: msg.Seq}
	e.history[key] = msg
	e.ackDirty = true // the local ack vector advances with st.next
	switch e.cfg.Ordering {
	case Unordered:
		if st.early[msg.Seq] {
			delete(st.early, msg.Seq) // already delivered ahead of order
			return
		}
		e.deliver(msg)
	case FIFO:
		e.deliver(msg)
	case Causal:
		e.causalPool = append(e.causalPool, msg)
		e.drainCausal()
	case Total:
		e.stash[key] = msg
		e.sequenceIfMine(key)
		e.drainTotal()
	}
}

// deliver hands one message to the application.
func (e *Engine) deliver(msg *wire.Message) {
	e.met.delivered.Inc()
	e.rec(flightrec.EvDeliver, uint64(msg.Sender), msg.Seq)
	if e.cfg.OnDeliver == nil {
		return
	}
	e.cfg.OnDeliver(Delivery{
		Group:   msg.Group,
		Sender:  msg.Sender,
		Seq:     msg.Seq,
		View:    msg.View,
		Payload: msg.Body,
	})
}

// drainCausal delivers every causally deliverable message in the pool.
func (e *Engine) drainCausal() {
	progress := true
	for progress {
		progress = false
		for i := 0; i < len(e.causalPool); i++ {
			m := e.causalPool[i]
			srank := e.view.Rank(m.Sender)
			if srank < 0 {
				// Sender left the view; deliver in arrival order.
				e.causalPool = append(e.causalPool[:i], e.causalPool[i+1:]...)
				e.deliver(m)
				progress = true
				break
			}
			if vclock.Deliverable(m.TS, e.vc, srank) {
				e.causalPool = append(e.causalPool[:i], e.causalPool[i+1:]...)
				e.vc = e.vc.Merge(m.TS)
				e.deliver(m)
				progress = true
				break
			}
		}
	}
}

// sequenceIfMine assigns a total-order slot when this node is the view's
// sequencer and the message has no slot yet.
func (e *Engine) sequenceIfMine(key msgKey) {
	if e.view.Coordinator() != e.env.Self() || e.ordered[key] {
		return
	}
	if e.frozen {
		// No new slots during a view change: every slot assigned before
		// the freeze is reflected in the sequencer's own slot count, so
		// the flush-convergence check forces all members to catch up to
		// it; a slot assigned after would escape the check. Unassigned
		// messages are drained deterministically at SetView.
		return
	}
	e.ordered[key] = true
	slot := e.seqSlot
	e.seqSlot++
	e.orders[slot] = key
	e.met.ordersSent.Inc()
	if e.cfg.DisableBatching {
		e.broadcastOrder(slot, key)
		return
	}
	// Aggregate into one KindOrderBatch per tick (see flushOrders). The
	// local orders map already has the slot, so local total-order
	// delivery is unaffected by the deferral.
	e.pendingOrders = append(e.pendingOrders, wire.OrderEntry{
		Slot: slot, Sender: key.sender, Seq: key.seq,
	})
}

// broadcastOrder announces one slot assignment to the other members.
func (e *Engine) broadcastOrder(slot uint64, key msgKey) {
	for _, m := range e.view.Members {
		if m == e.env.Self() {
			continue
		}
		e.env.Send(m, &wire.Message{
			Kind:   wire.KindOrder,
			Group:  e.cfg.Group,
			View:   e.view.ID,
			Sender: key.sender,
			Seq:    key.seq,
			Aux:    slot,
		})
	}
}

// onOrder records a sequencer slot assignment.
func (e *Engine) onOrder(msg *wire.Message) {
	key := msgKey{sender: msg.Sender, seq: msg.Seq}
	if _, ok := e.orders[msg.Aux]; !ok {
		e.orders[msg.Aux] = key
	}
	e.ordered[key] = true
	e.drainTotal()
}

// onOrderBatch records every slot assignment in an aggregated
// announcement, then drains once.
func (e *Engine) onOrderBatch(msg *wire.Message) {
	entries, _, err := wire.DecodeOrderBatch(msg.Body)
	if err != nil {
		return
	}
	for _, o := range entries {
		key := msgKey{sender: o.Sender, seq: o.Seq}
		if _, ok := e.orders[o.Slot]; !ok {
			e.orders[o.Slot] = key
		}
		e.ordered[key] = true
	}
	e.drainTotal()
}

// drainTotal delivers stashed messages whose slots are contiguous.
func (e *Engine) drainTotal() {
	for {
		key, ok := e.orders[e.totalNext]
		if !ok {
			return
		}
		m, ok := e.stash[key]
		if !ok {
			return // slot known, data still missing
		}
		delete(e.stash, key)
		e.totalNext++
		e.deliver(m)
	}
}

// peer returns the receive state for a sender, creating it on first use.
func (e *Engine) peer(n id.Node) *peerState {
	st, ok := e.peers[n]
	if !ok {
		st = &peerState{
			next:  1,
			buf:   make(map[uint64]*wire.Message),
			early: make(map[uint64]bool),
		}
		e.peers[n] = st
	}
	return st
}

// onNack serves a retransmission request for [msg.Seq, msg.Aux] of our own
// traffic (or of any sender's traffic we still hold, which covers flush
// assistance after the original sender failed). A NACK with Sender ==
// id.None is an order request: the sequencer re-announces slot assignments
// from slot msg.Seq upward.
func (e *Engine) onNack(from id.Node, msg *wire.Message) {
	if msg.View != e.view.ID {
		return
	}
	e.rec(flightrec.EvNackRecv, uint64(from), msg.Seq)
	if msg.Sender == id.None {
		e.serveOrderRequest(from, msg.Seq)
		return
	}
	e.serveRetrans(from, msg.Sender, msg.Seq, msg.Aux)
}

// onNackBatch serves every range in a coalesced retransmission request.
func (e *Engine) onNackBatch(from id.Node, msg *wire.Message) {
	if msg.View != e.view.ID {
		return
	}
	ranges, _, err := wire.DecodeNackRanges(msg.Body)
	if err != nil {
		return
	}
	e.rec(flightrec.EvNackRecv, uint64(from), uint64(len(ranges)))
	for _, r := range ranges {
		if r.Sender == id.None {
			e.serveOrderRequest(from, r.From)
			continue
		}
		e.serveRetrans(from, r.Sender, r.From, r.To)
	}
}

// serveOrderRequest re-announces known slot assignments from fromSlot
// upward. Any member that knows an assignment answers, not only the
// sequencer: this keeps total order recoverable after a sequencer crash.
// Local knowledge may have gaps, so scan the window rather than stop at
// the first unknown slot.
func (e *Engine) serveOrderRequest(from id.Node, fromSlot uint64) {
	if e.cfg.DisableBatching {
		served := 0
		for slot := fromSlot; slot-fromSlot < 1024 && served < len(e.orders); slot++ {
			if key, ok := e.orders[slot]; ok {
				served++
				e.env.Send(from, &wire.Message{
					Kind:   wire.KindOrder,
					Group:  e.cfg.Group,
					View:   e.view.ID,
					Sender: key.sender,
					Seq:    key.seq,
					Aux:    slot,
				})
				e.met.nacksServed.Inc()
			}
		}
		return
	}
	// Batched reply: every known assignment in the window in one
	// KindOrderBatch datagram.
	entries := e.orderScratch[:0]
	served := 0
	for slot := fromSlot; slot-fromSlot < 1024 && served < len(e.orders); slot++ {
		if key, ok := e.orders[slot]; ok {
			served++
			entries = append(entries, wire.OrderEntry{Slot: slot, Sender: key.sender, Seq: key.seq})
			e.met.nacksServed.Inc()
		}
	}
	e.orderScratch = entries
	if len(entries) == 0 {
		return
	}
	e.bodyScratch = wire.AppendOrderBatch(e.bodyScratch[:0], entries)
	e.env.Send(from, &wire.Message{
		Kind:  wire.KindOrderBatch,
		Group: e.cfg.Group,
		View:  e.view.ID,
		Body:  e.bodyScratch,
	})
}

// serveRetrans answers a retransmission request for [fromSeq, toSeq] of
// sender's traffic that we still hold (covering flush assistance after
// the original sender failed). The responder caps work per range.
func (e *Engine) serveRetrans(from id.Node, sender id.Node, fromSeq, toSeq uint64) {
	for seq := fromSeq; seq <= toSeq && seq-fromSeq < 1024; seq++ {
		key := msgKey{sender: sender, seq: seq}
		m, ok := e.history[key]
		if !ok {
			continue
		}
		r := *m
		r.Kind = wire.KindRetrans
		e.env.Send(from, &r)
		e.met.nacksServed.Inc()
		e.rec(flightrec.EvRetransmit, uint64(sender), seq)
	}
}

// onStable merges a member's ack vector and garbage-collects stable state.
func (e *Engine) onStable(from id.Node, msg *wire.Message) {
	if msg.View != e.view.ID || !e.view.Contains(from) {
		return
	}
	acks, _, err := wire.DecodeAckVector(msg.Body)
	if err != nil {
		return
	}
	e.mergeAckRow(from, acks)
}

// mergeAckRow merges a member's ack vector — from standalone gossip or
// piggybacked on data — into the stability matrix. The merge keeps the
// per-sender maximum: acknowledgments only grow within a view, so a
// reordered older vector must never regress the matrix (it would delay
// garbage collection at best and, after a piggyback, resurrect rows the
// newer vector already superseded).
func (e *Engine) mergeAckRow(from id.Node, acks []wire.AckEntry) {
	row, ok := e.ackMatrix[from]
	if !ok {
		row = make(map[id.Node]uint64, len(acks))
		e.ackMatrix[from] = row
	}
	for _, a := range acks {
		if a.Seq > row[a.Sender] {
			row[a.Sender] = a.Seq
		}
		// The vector also reveals the sender's horizon: if a member
		// has delivered seq s from some sender, s messages exist.
		st := e.peer(a.Sender)
		if a.Seq > st.horizon {
			st.horizon = a.Seq
		}
	}
	e.collectStable()
}

// ackVector builds this member's stability row in a fresh slice; see
// appendAckRows.
func (e *Engine) ackVector() []wire.AckEntry {
	return e.appendAckRows(make([]wire.AckEntry, 0, len(e.peers)))
}

// appendAckRows appends this member's stability row to dst: for every
// sender with receive state, the highest contiguously delivered sequence
// number. The local send stream appears as acked[self] = nextSend, since
// a sender delivers its own messages on send.
func (e *Engine) appendAckRows(dst []wire.AckEntry) []wire.AckEntry {
	for n, st := range e.peers {
		dst = append(dst, wire.AckEntry{Sender: n, Seq: st.next - 1})
	}
	// Deterministic wire bytes, independent of map iteration order. The
	// insertion sort keeps the per-multicast piggyback path free of the
	// closure and interface allocations sort.Slice would add.
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].Sender < dst[j-1].Sender; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// collectStable prunes history entries acknowledged by every view member.
func (e *Engine) collectStable() {
	if len(e.view.Members) == 0 {
		return
	}
	stable := func(key msgKey) bool {
		for _, m := range e.view.Members {
			if m == e.env.Self() {
				st, ok := e.peers[key.sender]
				if !ok || st.next-1 < key.seq {
					return false
				}
				continue
			}
			row, ok := e.ackMatrix[m]
			if !ok || row[key.sender] < key.seq {
				return false
			}
		}
		return true
	}
	for key := range e.history {
		if stable(key) {
			delete(e.history, key)
		}
	}
}

// OnTick flushes aggregated sequencer orders, sends coalesced NACKs and
// gossips stability when the local vector warrants it.
func (e *Engine) OnTick(now time.Time) {
	if e.view.ID == 0 {
		return
	}
	e.flushOrders()
	if e.cfg.DisableSuppression {
		e.scanGaps(now)
	} else {
		e.scanGapsSuppressed(now)
		e.fireRepairs(now)
	}
	e.scanOrderGaps(now)
	e.flushNacks()
	if now.Sub(e.lastStableTry) >= e.cfg.StabilizeEvery {
		e.lastStableTry = now
		// Quiescent suppression: skip the gossip when the vector already
		// went out unchanged (by earlier gossip or piggybacked on data),
		// but re-send after StableKeepalive so a lost final vector still
		// reaches everyone and history buffers drain.
		due := now.Sub(e.lastGossip) >= e.cfg.StabilizeEvery
		if e.cfg.DisableBatching ||
			(due && (e.ackDirty || now.Sub(e.lastGossip) >= e.cfg.StableKeepalive)) {
			e.lastGossip = now
			e.ackDirty = false
			e.gossipStability()
		}
		// Collect locally too: a singleton view receives no gossip, yet
		// its history must still drain to empty.
		e.collectStable()
		// Stability lag: how many delivered messages are still waiting
		// for every member's acknowledgment, sampled once per stability
		// period (after collection, so it measures the residue).
		e.met.stabilityLag.Observe(float64(len(e.history)))
	}
	e.met.historyLen.Set(int64(len(e.history)))
}

// flushOrders broadcasts the sequencer slots assigned since the last
// tick as KindOrderBatch datagrams, chunked under the datagram limit.
func (e *Engine) flushOrders() {
	if len(e.pendingOrders) == 0 {
		return
	}
	const chunkMax = 1024
	for i := 0; i < len(e.pendingOrders); i += chunkMax {
		end := i + chunkMax
		if end > len(e.pendingOrders) {
			end = len(e.pendingOrders)
		}
		e.bodyScratch = wire.AppendOrderBatch(e.bodyScratch[:0], e.pendingOrders[i:end])
		msg := wire.Message{
			Kind:  wire.KindOrderBatch,
			Group: e.cfg.Group,
			View:  e.view.ID,
			Body:  e.bodyScratch,
		}
		for _, m := range e.view.Members {
			if m == e.env.Self() {
				continue
			}
			e.env.Send(m, &msg)
		}
	}
	e.pendingOrders = e.pendingOrders[:0]
}

// queueNack records one NACK range for the destination, to go out in the
// tick's coalesced KindNackBatch.
func (e *Engine) queueNack(dst id.Node, r wire.NackRange) {
	e.nackQueue[dst] = append(e.nackQueue[dst], r)
}

// flushNacks sends one KindNackBatch per destination with every range
// queued this tick. Destinations are visited in ID order so the datagram
// sequence is deterministic under a seeded simulation.
func (e *Engine) flushNacks() {
	if len(e.nackQueue) == 0 {
		return
	}
	dsts := make([]id.Node, 0, len(e.nackQueue))
	for d := range e.nackQueue {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, d := range dsts {
		e.bodyScratch = wire.AppendNackRanges(e.bodyScratch[:0], e.nackQueue[d])
		msg := wire.Message{
			Kind:  wire.KindNackBatch,
			Group: e.cfg.Group,
			View:  e.view.ID,
			Body:  e.bodyScratch,
		}
		e.env.Send(d, &msg)
		delete(e.nackQueue, d)
	}
}

// scanOrderGaps requests missing total-order slot assignments when
// reliable messages are stuck in the stash. The request goes to every
// member, not only the sequencer: after a sequencer crash the surviving
// members collectively still know every assignment any of them applied,
// and whoever knows a slot answers.
func (e *Engine) scanOrderGaps(now time.Time) {
	if e.cfg.Ordering != Total || len(e.stash) == 0 {
		return
	}
	if e.totalNext > e.orderNackMark {
		e.orderNackBackoff = 0 // slots advanced since the last request
	}
	ival := e.backoffStretch(e.cfg.ResendAfter, e.orderNackBackoff)
	if e.orderNackBackoff > 0 {
		ival += time.Duration(e.rng.Int63n(int64(ival)/2 + 1))
	}
	if now.Sub(e.lastOrderNack) < ival {
		return
	}
	e.lastOrderNack = now
	e.orderNackMark = e.totalNext
	if e.orderNackBackoff < maxBackoffShift {
		e.orderNackBackoff++
	}
	for _, m := range e.view.Members {
		if m == e.env.Self() {
			continue
		}
		if e.cfg.DisableBatching {
			e.env.Send(m, &wire.Message{
				Kind:   wire.KindNack,
				Group:  e.cfg.Group,
				View:   e.view.ID,
				Sender: id.None, // order request marker
				Seq:    e.totalNext,
			})
		} else {
			e.queueNack(m, wire.NackRange{Sender: id.None, From: e.totalNext})
		}
		e.met.nacksSent.Inc()
		e.rec(flightrec.EvNackSent, uint64(id.None), e.totalNext)
	}
}

// scanGaps NACKs senders with reception gaps older than ResendAfter.
// Re-NACKs toward a sender that keeps not answering back off
// exponentially with jitter up to Suppression.BackoffCap — a permanently
// dead sender must not draw unbounded NACK traffic — and the backoff
// resets as soon as the stream progresses. Senders are visited in ID
// order so the datagram sequence is the same on every run of a seeded
// simulation.
func (e *Engine) scanGaps(now time.Time) {
	senders := make([]id.Node, 0, len(e.peers))
	for n := range e.peers {
		senders = append(senders, n)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	for _, n := range senders {
		st := e.peers[n]
		if n == e.env.Self() {
			continue
		}
		if st.horizon < st.next {
			st.nackBackoff = 0
			continue // no known gap
		}
		if st.next > st.nackMark {
			st.nackBackoff = 0 // the stream moved since the last NACK
		}
		ival := e.backoffStretch(e.cfg.ResendAfter, st.nackBackoff)
		if st.nackBackoff > 0 {
			// Jitter only the backed-off retries; the first NACK keeps
			// the prompt fixed-interval recovery latency.
			ival += time.Duration(e.rng.Int63n(int64(ival)/2 + 1))
		}
		if now.Sub(st.lastNack) < ival {
			continue
		}
		st.lastNack = now
		st.nackMark = st.next
		if st.nackBackoff < maxBackoffShift {
			st.nackBackoff++
		}
		// Request the full missing range; the responder caps work.
		if e.cfg.DisableBatching {
			e.env.Send(n, &wire.Message{
				Kind:   wire.KindNack,
				Group:  e.cfg.Group,
				View:   e.view.ID,
				Sender: n,
				Seq:    st.next,
				Aux:    st.horizon,
			})
		} else {
			e.queueNack(n, wire.NackRange{Sender: n, From: st.next, To: st.horizon})
		}
		e.met.nacksSent.Inc()
		e.rec(flightrec.EvNackSent, uint64(n), st.next)
	}
}

// gossipStability broadcasts this member's ack vector.
func (e *Engine) gossipStability() {
	e.met.gossipAcks.Inc()
	e.rec(flightrec.EvGossip, uint64(len(e.history)), 0)
	e.ackScratch = e.appendAckRows(e.ackScratch[:0])
	e.bodyScratch = wire.AppendAckVector(e.bodyScratch[:0], e.ackScratch)
	msg := wire.Message{
		Kind:  wire.KindStable,
		Group: e.cfg.Group,
		View:  e.view.ID,
		Body:  e.bodyScratch,
	}
	for _, m := range e.view.Members {
		if m == e.env.Self() {
			continue
		}
		e.env.Send(m, &msg)
	}
}
