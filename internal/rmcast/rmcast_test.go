package rmcast

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/netsim"
	"scalamedia/internal/proto"
	"scalamedia/internal/wire"
)

// rmNode bundles an engine with its delivery log.
type rmNode struct {
	eng   *Engine
	env   proto.Env
	got   []Delivery
	order []string // "sender:seq" in delivery order
}

func (n *rmNode) record(d Delivery) {
	n.got = append(n.got, d)
	n.order = append(n.order, fmt.Sprintf("%s:%d", d.Sender, d.Seq))
}

// buildStatic creates n engines sharing a pre-installed static view.
func buildStatic(s *netsim.Sim, n int, ord Ordering) map[id.Node]*rmNode {
	var members []id.Node
	for i := 1; i <= n; i++ {
		members = append(members, id.Node(i))
	}
	view := member.NewView(1, members)
	nodes := make(map[id.Node]*rmNode, n)
	for _, m := range members {
		m := m
		s.AddNode(m, func(env proto.Env) proto.Handler {
			rn := &rmNode{env: env}
			rn.eng = New(env, Config{
				Group:     1,
				Ordering:  ord,
				OnDeliver: func(d Delivery) { rn.record(d) },
			})
			rn.eng.SetView(view)
			nodes[m] = rn
			return rn.eng
		})
	}
	return nodes
}

func TestOrderingString(t *testing.T) {
	if Unordered.String() != "unordered" || Total.String() != "total" {
		t.Fatal("Ordering.String broken")
	}
	if Ordering(9).String() != "Ordering(9)" {
		t.Fatal("unknown ordering string broken")
	}
}

func TestMulticastNoView(t *testing.T) {
	s := netsim.New(netsim.Config{})
	var eng *Engine
	s.AddNode(1, func(env proto.Env) proto.Handler {
		eng = New(env, Config{Group: 1})
		return eng
	})
	if err := eng.Multicast([]byte("x")); !errors.Is(err, ErrNoView) {
		t.Fatalf("err = %v, want ErrNoView", err)
	}
}

func TestMulticastTooLarge(t *testing.T) {
	s := netsim.New(netsim.Config{})
	nodes := buildStatic(s, 1, FIFO)
	s.Run(10 * time.Millisecond)
	err := nodes[1].eng.Multicast(make([]byte, wire.MaxBody+1))
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestBasicDeliveryAllOrderings(t *testing.T) {
	for _, ord := range []Ordering{Unordered, FIFO, Causal, Total} {
		ord := ord
		t.Run(ord.String(), func(t *testing.T) {
			s := netsim.New(netsim.Config{Seed: 11})
			nodes := buildStatic(s, 3, ord)
			s.At(10*time.Millisecond, func() {
				if err := nodes[1].eng.Multicast([]byte("hello")); err != nil {
					t.Errorf("Multicast: %v", err)
				}
			})
			s.Run(2 * time.Second)
			for n, rn := range nodes {
				if len(rn.got) != 1 {
					t.Fatalf("node %s delivered %d messages, want 1", n, len(rn.got))
				}
				d := rn.got[0]
				if d.Sender != 1 || d.Seq != 1 || string(d.Payload) != "hello" {
					t.Fatalf("node %s delivery = %+v", n, d)
				}
			}
		})
	}
}

func TestSelfDelivery(t *testing.T) {
	s := netsim.New(netsim.Config{})
	nodes := buildStatic(s, 1, FIFO)
	s.At(time.Millisecond, func() {
		nodes[1].eng.Multicast([]byte("solo"))
	})
	s.Run(100 * time.Millisecond)
	if len(nodes[1].got) != 1 {
		t.Fatalf("self delivery count = %d", len(nodes[1].got))
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	s := netsim.New(netsim.Config{
		Seed: 12,
		// Heavy jitter reorders datagrams in flight.
		Profile: netsim.LANProfile(time.Millisecond, 20*time.Millisecond, 0),
	})
	nodes := buildStatic(s, 3, FIFO)
	const count = 50
	for i := 0; i < count; i++ {
		i := i
		s.At(time.Duration(i)*2*time.Millisecond, func() {
			nodes[1].eng.Multicast([]byte{byte(i)})
		})
	}
	s.Run(5 * time.Second)
	for n, rn := range nodes {
		if len(rn.got) != count {
			t.Fatalf("node %s delivered %d, want %d", n, len(rn.got), count)
		}
		for i, d := range rn.got {
			if d.Seq != uint64(i+1) {
				t.Fatalf("node %s FIFO violation at %d: seq %d", n, i, d.Seq)
			}
		}
	}
}

func TestLossRecovery(t *testing.T) {
	for _, ord := range []Ordering{Unordered, FIFO, Causal, Total} {
		ord := ord
		t.Run(ord.String(), func(t *testing.T) {
			s := netsim.New(netsim.Config{
				Seed:    13,
				Profile: netsim.LANProfile(time.Millisecond, 2*time.Millisecond, 0.15),
			})
			nodes := buildStatic(s, 4, ord)
			const count = 40
			for i := 0; i < count; i++ {
				i := i
				s.At(time.Duration(i*5)*time.Millisecond, func() {
					nodes[1].eng.Multicast([]byte{byte(i)})
				})
			}
			s.Run(10 * time.Second)
			for n, rn := range nodes {
				if len(rn.got) != count {
					t.Fatalf("node %s delivered %d of %d under 15%% loss (%s)",
						n, len(rn.got), count, ord)
				}
			}
			// Recovery must actually have happened.
			var nacks uint64
			for _, rn := range nodes {
				nacks += rn.eng.Counters().NacksSent
			}
			if nacks == 0 {
				t.Log("no NACKs sent; loss may not have hit data messages")
			}
		})
	}
}

func TestLastMessageLossRecovered(t *testing.T) {
	// Lose the tail of a burst; only stability gossip reveals the gap.
	s := netsim.New(netsim.Config{Seed: 14})
	nodes := buildStatic(s, 2, FIFO)
	s.At(10*time.Millisecond, func() {
		s.Partition([]id.Node{1}, []id.Node{2}) // black-hole the send
		nodes[1].eng.Multicast([]byte("lost tail"))
	})
	s.At(50*time.Millisecond, func() { s.Heal() })
	s.Run(3 * time.Second)
	if len(nodes[2].got) != 1 {
		t.Fatalf("tail loss never recovered: delivered %d", len(nodes[2].got))
	}
}

func TestDuplicatesSuppressed(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 15})
	nodes := buildStatic(s, 2, FIFO)
	s.At(10*time.Millisecond, func() {
		nodes[1].eng.Multicast([]byte("once"))
	})
	// Manually re-send the same datagram several times.
	for off := 50; off <= 150; off += 50 {
		off := off
		s.At(time.Duration(off)*time.Millisecond, func() {
			nodes[1].env.Send(2, &wire.Message{
				Kind: wire.KindData, Group: 1, View: 1,
				Sender: 1, Seq: 1, Body: []byte("once"),
			})
		})
	}
	s.Run(time.Second)
	if len(nodes[2].got) != 1 {
		t.Fatalf("delivered %d, want 1", len(nodes[2].got))
	}
	if nodes[2].eng.Counters().Duplicates == 0 {
		t.Fatal("duplicate counter is zero")
	}
}

func TestCausalOrderRespected(t *testing.T) {
	// Node 1 sends a; node 2 delivers a then sends b (b causally after
	// a). Node 3's link from 1 is slow, so b arrives first; causal
	// ordering must hold b until a is delivered.
	s := netsim.New(netsim.Config{
		Seed: 16,
		Profile: func(from, to id.Node) netsim.Link {
			if from == 1 && to == 3 {
				return netsim.Link{Delay: 100 * time.Millisecond}
			}
			return netsim.Link{Delay: time.Millisecond}
		},
	})
	nodes := buildStatic(s, 3, Causal)
	s.At(10*time.Millisecond, func() {
		nodes[1].eng.Multicast([]byte("a"))
	})
	s.At(30*time.Millisecond, func() {
		if len(nodes[2].got) != 1 {
			t.Error("node 2 has not delivered a yet")
			return
		}
		nodes[2].eng.Multicast([]byte("b"))
	})
	s.Run(3 * time.Second)
	rn := nodes[3]
	if len(rn.got) != 2 {
		t.Fatalf("node 3 delivered %d, want 2", len(rn.got))
	}
	if string(rn.got[0].Payload) != "a" || string(rn.got[1].Payload) != "b" {
		t.Fatalf("causal violation: delivered %q then %q",
			rn.got[0].Payload, rn.got[1].Payload)
	}
}

func TestConcurrentCausalBothDelivered(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 17})
	nodes := buildStatic(s, 3, Causal)
	s.At(10*time.Millisecond, func() {
		nodes[1].eng.Multicast([]byte("x"))
		nodes[2].eng.Multicast([]byte("y"))
	})
	s.Run(2 * time.Second)
	for n, rn := range nodes {
		if len(rn.got) != 2 {
			t.Fatalf("node %s delivered %d, want 2", n, len(rn.got))
		}
	}
}

func TestTotalOrderAgreement(t *testing.T) {
	// Several senders, jittery network: every member must deliver the
	// same sequence.
	s := netsim.New(netsim.Config{
		Seed:    18,
		Profile: netsim.LANProfile(time.Millisecond, 10*time.Millisecond, 0.05),
	})
	nodes := buildStatic(s, 4, Total)
	for i := 0; i < 30; i++ {
		i := i
		sender := id.Node(i%4 + 1)
		s.At(time.Duration(10+i*3)*time.Millisecond, func() {
			nodes[sender].eng.Multicast([]byte{byte(i)})
		})
	}
	s.Run(15 * time.Second)
	want := nodes[1].order
	if len(want) != 30 {
		t.Fatalf("node 1 delivered %d of 30", len(want))
	}
	for n, rn := range nodes {
		if !reflect.DeepEqual(rn.order, want) {
			t.Fatalf("node %s order differs:\n%v\nvs\n%v", n, rn.order, want)
		}
	}
}

func TestTotalOrderLostOrderRecovered(t *testing.T) {
	// Drop everything from the sequencer for a while; the periodic
	// order re-broadcast must unblock followers.
	s := netsim.New(netsim.Config{Seed: 19})
	nodes := buildStatic(s, 3, Total)
	s.At(5*time.Millisecond, func() {
		s.Partition([]id.Node{1}, []id.Node{2, 3})
	})
	s.At(10*time.Millisecond, func() {
		nodes[2].eng.Multicast([]byte("q")) // reaches 3, not sequencer 1
	})
	s.At(100*time.Millisecond, func() { s.Heal() })
	s.Run(5 * time.Second)
	for n, rn := range nodes {
		if len(rn.got) != 1 {
			t.Fatalf("node %s delivered %d, want 1", n, len(rn.got))
		}
	}
}

func TestStabilityGC(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 20})
	nodes := buildStatic(s, 3, FIFO)
	for i := 0; i < 20; i++ {
		i := i
		s.At(time.Duration(10+i*5)*time.Millisecond, func() {
			nodes[1].eng.Multicast([]byte{byte(i)})
		})
	}
	s.Run(5 * time.Second)
	for n, rn := range nodes {
		if got := len(rn.eng.history); got != 0 {
			t.Fatalf("node %s history holds %d messages after stability", n, got)
		}
	}
}

func TestViewChangeResetsSequences(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 21})
	nodes := buildStatic(s, 2, FIFO)
	s.At(10*time.Millisecond, func() {
		nodes[1].eng.Multicast([]byte("v1 msg"))
	})
	v2 := member.NewView(2, []id.Node{1, 2})
	s.At(500*time.Millisecond, func() {
		nodes[1].eng.SetView(v2)
		nodes[2].eng.SetView(v2)
	})
	s.At(510*time.Millisecond, func() {
		nodes[1].eng.Multicast([]byte("v2 msg"))
	})
	s.Run(3 * time.Second)
	rn := nodes[2]
	if len(rn.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(rn.got))
	}
	if rn.got[0].View != 1 || rn.got[1].View != 2 {
		t.Fatalf("views = %v, %v", rn.got[0].View, rn.got[1].View)
	}
	if rn.got[1].Seq != 1 {
		t.Fatalf("sequence not reset per view: seq = %d", rn.got[1].Seq)
	}
}

func TestFutureViewMessagesBuffered(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 22})
	nodes := buildStatic(s, 2, FIFO)
	v2 := member.NewView(2, []id.Node{1, 2})
	// Node 1 moves to view 2 and sends before node 2 has installed it.
	s.At(10*time.Millisecond, func() {
		nodes[1].eng.SetView(v2)
		nodes[1].eng.Multicast([]byte("early"))
	})
	s.At(200*time.Millisecond, func() {
		nodes[2].eng.SetView(v2)
	})
	s.Run(2 * time.Second)
	if len(nodes[2].got) != 1 || string(nodes[2].got[0].Payload) != "early" {
		t.Fatalf("future-view message lost: %+v", nodes[2].got)
	}
}

func TestFlushDeliversUnstableToNewMember(t *testing.T) {
	// A message known only to nodes 1 and 2 must reach node 3 via the
	// flush retransmission when the view changes.
	s := netsim.New(netsim.Config{Seed: 23})
	nodes := buildStatic(s, 2, FIFO)
	var n3 *rmNode
	s.AddNode(3, func(env proto.Env) proto.Handler {
		n3 = &rmNode{env: env}
		n3.eng = New(env, Config{Group: 1, Ordering: FIFO,
			OnDeliver: func(d Delivery) { n3.record(d) }})
		return n3.eng
	})
	s.At(10*time.Millisecond, func() {
		nodes[1].eng.Multicast([]byte("pre-join"))
	})
	v2 := member.NewView(2, []id.Node{1, 2, 3})
	s.At(100*time.Millisecond, func() {
		// Flush in the old view pushes unstable history; note the
		// retransmissions carry view 1, so node 3 buffers nothing —
		// this verifies flush only matters for members sharing the
		// old view. New members rely on application-level state
		// transfer, matching the paper-era systems.
		nodes[1].eng.Flush(v2)
		nodes[1].eng.SetView(v2)
		nodes[2].eng.SetView(v2)
		n3.eng.SetView(v2)
	})
	s.At(150*time.Millisecond, func() {
		nodes[1].eng.Multicast([]byte("post-join"))
	})
	s.Run(3 * time.Second)
	if len(n3.got) != 1 || string(n3.got[0].Payload) != "post-join" {
		t.Fatalf("new member deliveries = %+v", n3.got)
	}
}

func TestFlushCoversCrashedSender(t *testing.T) {
	// Sender 1 multicasts; node 2 receives it, node 3 does not (link
	// partitioned). Sender crashes. On flush, node 2's retransmission
	// must cover the gap for node 3.
	s := netsim.New(netsim.Config{Seed: 24})
	nodes := buildStatic(s, 3, FIFO)
	s.At(5*time.Millisecond, func() {
		s.Partition([]id.Node{1, 2}, []id.Node{3})
		nodes[1].eng.Multicast([]byte("orphan"))
	})
	s.At(100*time.Millisecond, func() {
		s.Heal()
		s.Crash(1)
	})
	v2 := member.NewView(2, []id.Node{2, 3})
	s.At(200*time.Millisecond, func() {
		// Membership would call Flush on both survivors before
		// installing v2. Flush retransmits in the OLD view.
		nodes[2].eng.Flush(v2)
	})
	s.At(400*time.Millisecond, func() {
		nodes[2].eng.SetView(v2)
		nodes[3].eng.SetView(v2)
	})
	s.Run(3 * time.Second)
	found := false
	for _, d := range nodes[3].got {
		if string(d.Payload) == "orphan" {
			found = true
		}
	}
	if !found {
		t.Fatalf("crashed sender's message never reached node 3: %+v", nodes[3].order)
	}
}

func TestCountersProgress(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 25})
	nodes := buildStatic(s, 2, FIFO)
	s.At(10*time.Millisecond, func() {
		nodes[1].eng.Multicast([]byte("m"))
	})
	s.Run(time.Second)
	c1 := nodes[1].eng.Counters()
	if c1.Sent != 1 || c1.Delivered != 1 {
		t.Fatalf("sender counters = %+v", c1)
	}
	c2 := nodes[2].eng.Counters()
	if c2.Delivered != 1 {
		t.Fatalf("receiver counters = %+v", c2)
	}
}

func TestThroughputManyMessages(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 26})
	nodes := buildStatic(s, 5, Causal)
	const perSender = 60
	for i := 0; i < perSender; i++ {
		i := i
		s.At(time.Duration(i)*2*time.Millisecond, func() {
			for n := id.Node(1); n <= 5; n++ {
				nodes[n].eng.Multicast([]byte{byte(i)})
			}
		})
	}
	s.Run(20 * time.Second)
	for n, rn := range nodes {
		if len(rn.got) != perSender*5 {
			t.Fatalf("node %s delivered %d of %d", n, len(rn.got), perSender*5)
		}
	}
}
