package rmcast

import (
	"errors"
	"testing"
	"time"

	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/netsim"
	"scalamedia/internal/proto"
	"scalamedia/internal/wire"
)

// ackNode bundles an AckEngine with its delivery log.
type ackNode struct {
	eng *Engine // unused; kept for symmetry
	ack *AckEngine
	got []Delivery
}

func buildAckStatic(s *netsim.Sim, n int) map[id.Node]*ackNode {
	var members []id.Node
	for i := 1; i <= n; i++ {
		members = append(members, id.Node(i))
	}
	view := member.NewView(1, members)
	nodes := make(map[id.Node]*ackNode, n)
	for _, m := range members {
		m := m
		s.AddNode(m, func(env proto.Env) proto.Handler {
			an := &ackNode{}
			an.ack = NewAck(env, Config{
				Group:     1,
				OnDeliver: func(d Delivery) { an.got = append(an.got, d) },
			})
			an.ack.SetView(view)
			nodes[m] = an
			return an.ack
		})
	}
	return nodes
}

func TestAckBasicDelivery(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 81})
	nodes := buildAckStatic(s, 3)
	s.At(10*time.Millisecond, func() {
		if err := nodes[1].ack.Multicast([]byte("ack hello")); err != nil {
			t.Errorf("Multicast: %v", err)
		}
	})
	s.Run(2 * time.Second)
	for n, an := range nodes {
		if len(an.got) != 1 || string(an.got[0].Payload) != "ack hello" {
			t.Fatalf("node %s deliveries = %+v", n, an.got)
		}
	}
	// Full acknowledgment garbage-collects the pending entry.
	if got := nodes[1].ack.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d after full ack", got)
	}
}

func TestAckNoView(t *testing.T) {
	s := netsim.New(netsim.Config{})
	var eng *AckEngine
	s.AddNode(1, func(env proto.Env) proto.Handler {
		eng = NewAck(env, Config{Group: 1})
		return eng
	})
	if err := eng.Multicast([]byte("x")); !errors.Is(err, ErrNoView) {
		t.Fatalf("err = %v", err)
	}
}

func TestAckTooLarge(t *testing.T) {
	s := netsim.New(netsim.Config{})
	nodes := buildAckStatic(s, 1)
	s.Run(time.Millisecond)
	if err := nodes[1].ack.Multicast(make([]byte, wire.MaxBody+1)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestAckLossRecovery(t *testing.T) {
	s := netsim.New(netsim.Config{
		Seed:    82,
		Profile: netsim.LANProfile(time.Millisecond, 2*time.Millisecond, 0.2),
	})
	nodes := buildAckStatic(s, 4)
	const count = 30
	for i := 0; i < count; i++ {
		i := i
		s.At(time.Duration(10+i*5)*time.Millisecond, func() {
			nodes[2].ack.Multicast([]byte{byte(i)})
		})
	}
	s.Run(10 * time.Second)
	for n, an := range nodes {
		if len(an.got) != count {
			t.Fatalf("node %s delivered %d of %d under 20%% loss", n, len(an.got), count)
		}
		for i, d := range an.got {
			if d.Seq != uint64(i+1) {
				t.Fatalf("node %s FIFO violation at %d", n, i)
			}
		}
	}
	if nodes[2].ack.Outstanding() != 0 {
		t.Fatalf("sender still tracks %d messages", nodes[2].ack.Outstanding())
	}
	if nodes[2].ack.Counters().NacksServed == 0 {
		t.Fatal("no retransmissions under 20% loss")
	}
}

func TestAckImplosion(t *testing.T) {
	// The defining cost: one multicast on a loss-free network triggers
	// n-1 ACKs at the sender.
	s := netsim.New(netsim.Config{Seed: 83})
	n := 8
	nodes := buildAckStatic(s, n)
	s.At(10*time.Millisecond, func() {
		nodes[1].ack.Multicast([]byte("implode"))
	})
	s.Run(2 * time.Second)
	st := s.Stats()
	if got := st.SentByKind[wire.KindAck]; got != uint64(n-1) {
		t.Fatalf("ACK datagrams = %d, want %d", got, n-1)
	}
}

func TestAckViewReset(t *testing.T) {
	s := netsim.New(netsim.Config{Seed: 84})
	nodes := buildAckStatic(s, 2)
	s.At(10*time.Millisecond, func() { nodes[1].ack.Multicast([]byte("v1")) })
	v2 := member.NewView(2, []id.Node{1, 2})
	s.At(500*time.Millisecond, func() {
		nodes[1].ack.SetView(v2)
		nodes[2].ack.SetView(v2)
	})
	s.At(510*time.Millisecond, func() { nodes[1].ack.Multicast([]byte("v2")) })
	s.Run(3 * time.Second)
	an := nodes[2]
	if len(an.got) != 2 || an.got[1].Seq != 1 || an.got[1].View != 2 {
		t.Fatalf("deliveries = %+v", an.got)
	}
}

func TestAckMultipleSendersFIFO(t *testing.T) {
	s := netsim.New(netsim.Config{
		Seed:    85,
		Profile: netsim.LANProfile(time.Millisecond, 10*time.Millisecond, 0.05),
	})
	nodes := buildAckStatic(s, 3)
	const count = 20
	for i := 0; i < count; i++ {
		i := i
		s.At(time.Duration(10+i*5)*time.Millisecond, func() {
			nodes[1].ack.Multicast([]byte{1, byte(i)})
			nodes[2].ack.Multicast([]byte{2, byte(i)})
		})
	}
	s.Run(10 * time.Second)
	for n, an := range nodes {
		if len(an.got) != 2*count {
			t.Fatalf("node %s delivered %d of %d", n, len(an.got), 2*count)
		}
		seen := map[id.Node]uint64{}
		for _, d := range an.got {
			if d.Seq != seen[d.Sender]+1 {
				t.Fatalf("node %s: sender %s seq %d after %d",
					n, d.Sender, d.Seq, seen[d.Sender])
			}
			seen[d.Sender] = d.Seq
		}
	}
}
