//go:build !race

package benches

// raceEnabled reports whether the race detector is active. Under race,
// sync.Pool deliberately drops a fraction of Puts, so allocation-count
// assertions on pooled paths are skipped.
const raceEnabled = false
