// Package benches holds the data-plane micro-benchmark bodies shared
// between the `go test -bench` wrappers (benches_test.go) and the
// benchmark-regression gate (TestBenchGate at the repo root). Defining
// the bodies once keeps interactive bench runs and the gate's
// testing.Benchmark invocations measuring exactly the same code.
package benches

import (
	"testing"
	"time"

	"scalamedia/internal/flightrec"
	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/proto"
	"scalamedia/internal/rmcast"
	"scalamedia/internal/stats"
	"scalamedia/internal/transport"
	"scalamedia/internal/wire"
)

// benchGroupSize is the view size the rmcast benchmarks run with: large
// enough that the fan-out loop dominates, small enough that one op stays
// in the microsecond range.
const benchGroupSize = 8

// SampleDataMessage returns a representative steady-state data message:
// causal timestamp for a benchGroupSize view, a typical audio-frame body
// and a piggybacked stability vector.
func SampleDataMessage() *wire.Message {
	ts := make([]uint32, benchGroupSize)
	acks := make([]wire.AckEntry, benchGroupSize)
	for i := range ts {
		ts[i] = uint32(100 + i)
		acks[i] = wire.AckEntry{Sender: id.Node(i + 1), Seq: uint64(100 + i)}
	}
	body := make([]byte, 512)
	for i := range body {
		body[i] = byte(i)
	}
	return &wire.Message{
		Kind:   wire.KindData,
		Flags:  wire.FlagCausal | wire.FlagPiggyAck,
		From:   1,
		Group:  1,
		View:   1,
		Sender: 1,
		Seq:    1000,
		TS:     ts,
		Body:   body,
		Acks:   acks,
	}
}

// WireRoundTrip measures one encode+decode cycle of a steady-state data
// message through the pooled buffer and message paths. Zero allocs/op.
func WireRoundTrip(b *testing.B) {
	msg := SampleDataMessage()
	m := wire.GetMessage()
	defer wire.PutMessage(m)
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	// Warm the reusable storage so the loop measures the steady state.
	*bp = msg.Encode((*bp)[:0])
	if err := wire.DecodeInto(m, *bp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*bp = msg.Encode((*bp)[:0])
		if err := wire.DecodeInto(m, *bp); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEnv is a proto.Env whose Send behaves like a real transport:
// encode synchronously into a pooled buffer, then let go of the message.
type benchEnv struct {
	self id.Node
	now  time.Time
	sink func(to id.Node, msg *wire.Message)
}

var _ proto.Env = (*benchEnv)(nil)

func (e *benchEnv) Self() id.Node  { return e.self }
func (e *benchEnv) Now() time.Time { return e.now }
func (e *benchEnv) Send(to id.Node, msg *wire.Message) {
	e.sink(to, msg)
}

// newBenchEngine builds an rmcast engine for node 1 in a static
// benchGroupSize view, wired to an encode-and-discard transport.
func newBenchEngine() (*rmcast.Engine, *benchEnv, []id.Node) {
	return newBenchEngineWith(nil, nil)
}

// newBenchEngineWith is newBenchEngine with a metrics registry and flight
// recorder attached, for measuring instrumentation overhead.
func newBenchEngineWith(reg *stats.Registry, fr *flightrec.Recorder) (*rmcast.Engine, *benchEnv, []id.Node) {
	env := &benchEnv{self: 1, now: time.Unix(0, 0)}
	env.sink = func(_ id.Node, msg *wire.Message) {
		bp := wire.GetBuf()
		*bp = msg.Encode((*bp)[:0])
		wire.PutBuf(bp)
	}
	eng := rmcast.New(env, rmcast.Config{
		Group:     1,
		Ordering:  rmcast.FIFO,
		Metrics:   reg,
		Flight:    fr,
		OnDeliver: func(rmcast.Delivery) {},
	})
	members := make([]id.Node, benchGroupSize)
	for i := range members {
		members[i] = id.Node(i + 1)
	}
	eng.SetView(member.NewView(1, members))
	return eng, env, members
}

// stabilizer feeds the engine synthetic KindStable vectors from every
// peer, acknowledging everything node 1 has sent, so the history buffer
// drains and the benchmark measures the steady state rather than an
// ever-growing history map. Its scratch storage makes the periodic
// acknowledgment itself allocation-free once warm.
type stabilizer struct {
	row  []wire.AckEntry
	body []byte
	msg  wire.Message
}

func (s *stabilizer) ack(eng *rmcast.Engine, members []id.Node, seq uint64) {
	s.row = append(s.row[:0], wire.AckEntry{Sender: 1, Seq: seq})
	s.body = wire.AppendAckVector(s.body[:0], s.row)
	s.msg = wire.Message{Kind: wire.KindStable, Group: 1, View: 1, Body: s.body}
	for _, m := range members {
		if m == 1 {
			continue
		}
		s.msg.From = m
		eng.OnMessage(m, &s.msg)
	}
}

// RmcastMulticastFull measures one application Multicast end to end on
// the sender: piggybacked ack vector, one encode per peer through the
// pooled buffer path, and local dispatch. The few remaining allocs/op
// are the retained payload copy and message struct handed to the history
// buffer and OnDeliver — deliberately not pooled, since applications may
// keep them.
func RmcastMulticastFull(b *testing.B) {
	eng, _, members := newBenchEngine()
	payload := make([]byte, 256)
	var st stabilizer
	// Warm one stabilization round so its maps and scratch exist.
	if err := eng.Multicast(payload); err != nil {
		b.Fatal(err)
	}
	st.ack(eng, members, eng.Counters().Sent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Multicast(payload); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			st.ack(eng, members, eng.Counters().Sent)
		}
	}
}

// RmcastMulticastInstrumented is RmcastMulticastFull with the full
// telemetry layer live: a registry-backed counter set and a flight
// recorder receiving one event per send. The allocation budget must match
// the uninstrumented benchmark exactly — metric increments are plain
// atomics on pre-resolved pointers and Record writes into a fixed ring,
// so instrumentation adds zero allocations to the hot path.
func RmcastMulticastInstrumented(b *testing.B) {
	reg := stats.NewRegistry()
	fr := flightrec.New(1024)
	eng, _, members := newBenchEngineWith(reg, fr)
	payload := make([]byte, 256)
	var st stabilizer
	if err := eng.Multicast(payload); err != nil {
		b.Fatal(err)
	}
	st.ack(eng, members, eng.Counters().Sent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Multicast(payload); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			st.ack(eng, members, eng.Counters().Sent)
		}
	}
}

// CapturedDataMessage runs real Multicasts against a capturing transport
// and returns a deep copy of an outgoing steady-state data message —
// piggybacked ack vector included — for encode-path benchmarks.
func CapturedDataMessage() *wire.Message {
	eng, env, _ := newBenchEngine()
	var captured *wire.Message
	env.sink = func(_ id.Node, msg *wire.Message) {
		if msg.Kind == wire.KindData && msg.Flags&wire.FlagPiggyAck != 0 {
			c := *msg
			c.TS = append(msg.TS[:0:0], msg.TS...)
			c.Body = append(msg.Body[:0:0], msg.Body...)
			c.Acks = append(msg.Acks[:0:0], msg.Acks...)
			captured = &c
		}
	}
	payload := make([]byte, 256)
	// The first send predates any receive state, so its ack vector is
	// empty; the second piggybacks the self row.
	for i := 0; i < 2 && captured == nil; i++ {
		if err := eng.Multicast(payload); err != nil {
			panic(err)
		}
	}
	if captured == nil {
		panic("benches: no piggybacked data message captured")
	}
	return captured
}

// RmcastMulticastEncode isolates the wire encode path of the multicast
// send loop: encoding one engine-produced data message into a pooled
// buffer, exactly as every transport's Send does. Zero allocs/op.
func RmcastMulticastEncode(b *testing.B) {
	msg := CapturedDataMessage()
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	*bp = msg.Encode((*bp)[:0]) // warm the buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*bp = msg.Encode((*bp)[:0])
	}
}

// TransportLoopback measures one datagram through the in-process fabric
// on a zero-delay link: pooled encode, inline delivery, decode into the
// receiver's queue.
func TransportLoopback(b *testing.B) {
	f := transport.NewFabric()
	src, err := f.Attach(1)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := f.Attach(2)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	msg := SampleDataMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(2, msg); err != nil {
			b.Fatal(err)
		}
		<-dst.Recv()
	}
}
