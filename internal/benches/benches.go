// Package benches holds the data-plane micro-benchmark bodies shared
// between the `go test -bench` wrappers (benches_test.go) and the
// benchmark-regression gate (TestBenchGate at the repo root). Defining
// the bodies once keeps interactive bench runs and the gate's
// testing.Benchmark invocations measuring exactly the same code.
package benches

import (
	"testing"
	"time"

	"scalamedia/internal/flightrec"
	"scalamedia/internal/id"
	"scalamedia/internal/member"
	"scalamedia/internal/netsim"
	"scalamedia/internal/proto"
	"scalamedia/internal/rmcast"
	"scalamedia/internal/stats"
	"scalamedia/internal/transport"
	"scalamedia/internal/wire"
)

// benchGroupSize is the view size the rmcast benchmarks run with: large
// enough that the fan-out loop dominates, small enough that one op stays
// in the microsecond range.
const benchGroupSize = 8

// SampleDataMessage returns a representative steady-state data message:
// causal timestamp for a benchGroupSize view, a typical audio-frame body
// and a piggybacked stability vector.
func SampleDataMessage() *wire.Message {
	ts := make([]uint32, benchGroupSize)
	acks := make([]wire.AckEntry, benchGroupSize)
	for i := range ts {
		ts[i] = uint32(100 + i)
		acks[i] = wire.AckEntry{Sender: id.Node(i + 1), Seq: uint64(100 + i)}
	}
	body := make([]byte, 512)
	for i := range body {
		body[i] = byte(i)
	}
	return &wire.Message{
		Kind:   wire.KindData,
		Flags:  wire.FlagCausal | wire.FlagPiggyAck,
		From:   1,
		Group:  1,
		View:   1,
		Sender: 1,
		Seq:    1000,
		TS:     ts,
		Body:   body,
		Acks:   acks,
	}
}

// WireRoundTrip measures one encode+decode cycle of a steady-state data
// message through the pooled buffer and message paths. Zero allocs/op.
func WireRoundTrip(b *testing.B) {
	msg := SampleDataMessage()
	m := wire.GetMessage()
	defer wire.PutMessage(m)
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	// Warm the reusable storage so the loop measures the steady state.
	*bp = msg.Encode((*bp)[:0])
	if err := wire.DecodeInto(m, *bp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*bp = msg.Encode((*bp)[:0])
		if err := wire.DecodeInto(m, *bp); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEnv is a proto.Env whose Send behaves like a real transport:
// encode synchronously into a pooled buffer, then let go of the message.
type benchEnv struct {
	self id.Node
	now  time.Time
	sink func(to id.Node, msg *wire.Message)
}

var _ proto.Env = (*benchEnv)(nil)

func (e *benchEnv) Self() id.Node  { return e.self }
func (e *benchEnv) Now() time.Time { return e.now }
func (e *benchEnv) Send(to id.Node, msg *wire.Message) {
	e.sink(to, msg)
}

// newBenchEngine builds an rmcast engine for node 1 in a static
// benchGroupSize view, wired to an encode-and-discard transport.
func newBenchEngine() (*rmcast.Engine, *benchEnv, []id.Node) {
	return newBenchEngineWith(nil, nil)
}

// newBenchEngineWith is newBenchEngine with a metrics registry and flight
// recorder attached, for measuring instrumentation overhead.
func newBenchEngineWith(reg *stats.Registry, fr *flightrec.Recorder) (*rmcast.Engine, *benchEnv, []id.Node) {
	env := &benchEnv{self: 1, now: time.Unix(0, 0)}
	env.sink = func(_ id.Node, msg *wire.Message) {
		bp := wire.GetBuf()
		*bp = msg.Encode((*bp)[:0])
		wire.PutBuf(bp)
	}
	eng := rmcast.New(env, rmcast.Config{
		Group:     1,
		Ordering:  rmcast.FIFO,
		Metrics:   reg,
		Flight:    fr,
		OnDeliver: func(rmcast.Delivery) {},
	})
	members := make([]id.Node, benchGroupSize)
	for i := range members {
		members[i] = id.Node(i + 1)
	}
	eng.SetView(member.NewView(1, members))
	return eng, env, members
}

// stabilizer feeds the engine synthetic KindStable vectors from every
// peer, acknowledging everything node 1 has sent, so the history buffer
// drains and the benchmark measures the steady state rather than an
// ever-growing history map. Its scratch storage makes the periodic
// acknowledgment itself allocation-free once warm.
type stabilizer struct {
	row  []wire.AckEntry
	body []byte
	msg  wire.Message
}

func (s *stabilizer) ack(eng *rmcast.Engine, members []id.Node, seq uint64) {
	s.row = append(s.row[:0], wire.AckEntry{Sender: 1, Seq: seq})
	s.body = wire.AppendAckVector(s.body[:0], s.row)
	s.msg = wire.Message{Kind: wire.KindStable, Group: 1, View: 1, Body: s.body}
	for _, m := range members {
		if m == 1 {
			continue
		}
		s.msg.From = m
		eng.OnMessage(m, &s.msg)
	}
}

// RmcastMulticastFull measures one application Multicast end to end on
// the sender: piggybacked ack vector, one encode per peer through the
// pooled buffer path, and local dispatch. The few remaining allocs/op
// are the retained payload copy and message struct handed to the history
// buffer and OnDeliver — deliberately not pooled, since applications may
// keep them.
func RmcastMulticastFull(b *testing.B) {
	eng, _, members := newBenchEngine()
	payload := make([]byte, 256)
	var st stabilizer
	// Warm one stabilization round so its maps and scratch exist.
	if err := eng.Multicast(payload); err != nil {
		b.Fatal(err)
	}
	st.ack(eng, members, eng.Counters().Sent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Multicast(payload); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			st.ack(eng, members, eng.Counters().Sent)
		}
	}
}

// RmcastMulticastFlow is RmcastMulticastFull with the stability-window
// flow controller armed: every Multicast runs the admission check
// (occupancy and byte accounting against FlowWindow) before the normal
// send path. The stabilization cadence keeps the window open, so the
// benchmark measures the uncongested fast path — its allocation budget
// must match RmcastMulticastFull exactly, proving the flow-control check
// adds zero allocations per send.
func RmcastMulticastFlow(b *testing.B) {
	env := &benchEnv{self: 1, now: time.Unix(0, 0)}
	env.sink = func(_ id.Node, msg *wire.Message) {
		bp := wire.GetBuf()
		*bp = msg.Encode((*bp)[:0])
		wire.PutBuf(bp)
	}
	eng := rmcast.New(env, rmcast.Config{
		Group:      1,
		Ordering:   rmcast.FIFO,
		FlowWindow: 128, // twice the 64-send stabilization cadence
		OnDeliver:  func(rmcast.Delivery) {},
	})
	members := make([]id.Node, benchGroupSize)
	for i := range members {
		members[i] = id.Node(i + 1)
	}
	eng.SetView(member.NewView(1, members))
	payload := make([]byte, 256)
	var st stabilizer
	if err := eng.Multicast(payload); err != nil {
		b.Fatal(err)
	}
	st.ack(eng, members, eng.Counters().Sent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Multicast(payload); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			st.ack(eng, members, eng.Counters().Sent)
		}
	}
}

// RmcastMulticastTotal measures one application Multicast under sharded
// total order: node 1 is shard 0's sequencer and the merge coordinator
// of an 8-member view, so every op runs the range-accumulation path
// (extend the open seq-run, queue the message on its shard) and each
// rangeFlushThreshold-th op flushes a pipelined range decision, emits
// the merge directive and delivers the whole run. The ordering machinery
// must stay alloc-neutral: the budget matches RmcastMulticastFull, so
// the ORDER hot path adds zero allocations per message.
func RmcastMulticastTotal(b *testing.B) {
	env := &benchEnv{self: 1, now: time.Unix(0, 0)}
	env.sink = func(_ id.Node, msg *wire.Message) {
		bp := wire.GetBuf()
		*bp = msg.Encode((*bp)[:0])
		wire.PutBuf(bp)
	}
	eng := rmcast.New(env, rmcast.Config{
		Group:       1,
		Ordering:    rmcast.Total,
		OrderShards: 4,
		OnDeliver:   func(rmcast.Delivery) {},
	})
	members := make([]id.Node, benchGroupSize)
	for i := range members {
		members[i] = id.Node(i + 1)
	}
	eng.SetView(member.NewView(1, members))
	payload := make([]byte, 256)
	var st stabilizer
	// Warm a full flush cycle so the shard logs, queues and scratch
	// buffers exist before the timer starts.
	for i := 0; i < 512; i++ {
		if err := eng.Multicast(payload); err != nil {
			b.Fatal(err)
		}
	}
	st.ack(eng, members, eng.Counters().Sent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Multicast(payload); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			st.ack(eng, members, eng.Counters().Sent)
		}
	}
}

// RmcastMulticastInstrumented is RmcastMulticastFull with the full
// telemetry layer live: a registry-backed counter set and a flight
// recorder receiving one event per send. The allocation budget must match
// the uninstrumented benchmark exactly — metric increments are plain
// atomics on pre-resolved pointers and Record writes into a fixed ring,
// so instrumentation adds zero allocations to the hot path.
func RmcastMulticastInstrumented(b *testing.B) {
	reg := stats.NewRegistry()
	fr := flightrec.New(1024)
	eng, _, members := newBenchEngineWith(reg, fr)
	payload := make([]byte, 256)
	var st stabilizer
	if err := eng.Multicast(payload); err != nil {
		b.Fatal(err)
	}
	st.ack(eng, members, eng.Counters().Sent)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Multicast(payload); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			st.ack(eng, members, eng.Counters().Sent)
		}
	}
}

// CapturedDataMessage runs real Multicasts against a capturing transport
// and returns a deep copy of an outgoing steady-state data message —
// piggybacked ack vector included — for encode-path benchmarks.
func CapturedDataMessage() *wire.Message {
	eng, env, _ := newBenchEngine()
	var captured *wire.Message
	env.sink = func(_ id.Node, msg *wire.Message) {
		if msg.Kind == wire.KindData && msg.Flags&wire.FlagPiggyAck != 0 {
			c := *msg
			c.TS = append(msg.TS[:0:0], msg.TS...)
			c.Body = append(msg.Body[:0:0], msg.Body...)
			c.Acks = append(msg.Acks[:0:0], msg.Acks...)
			captured = &c
		}
	}
	payload := make([]byte, 256)
	// The first send predates any receive state, so its ack vector is
	// empty; the second piggybacks the self row.
	for i := 0; i < 2 && captured == nil; i++ {
		if err := eng.Multicast(payload); err != nil {
			panic(err)
		}
	}
	if captured == nil {
		panic("benches: no piggybacked data message captured")
	}
	return captured
}

// RmcastMulticastEncode isolates the wire encode path of the multicast
// send loop: encoding one engine-produced data message into a pooled
// buffer, exactly as every transport's Send does. Zero allocs/op.
func RmcastMulticastEncode(b *testing.B) {
	msg := CapturedDataMessage()
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	*bp = msg.Encode((*bp)[:0]) // warm the buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*bp = msg.Encode((*bp)[:0])
	}
}

// echoNode is the minimal simulator workload: every delivered datagram is
// sent straight back, so a pair of echo nodes keeps a fixed population of
// datagrams in perpetual flight with no protocol logic in the way.
type echoNode struct {
	env  proto.Env
	peer id.Node
}

func (e *echoNode) OnMessage(_ id.Node, msg *wire.Message) { e.env.Send(e.peer, msg) }
func (e *echoNode) OnTick(time.Time)                       {}

// netsimInflight is how many datagrams the node-step benchmark keeps in
// flight: enough that deliveries dwarf the background tick events, small
// enough that the calendar queue stays in its near-bucket regime.
const netsimInflight = 16

// NetsimNodeStep measures one simulator event step end to end: calendar
// queue pop, link model (delay, jitter and loss draws), wire decode into
// a fresh message, handler dispatch, and the echo reply's encode and
// re-schedule. This is the per-event cost that the 256- and 1024-node
// sweeps multiply by millions, so it gates the netsim scale refactor.
func NetsimNodeStep(b *testing.B) {
	// 1ms delay, no jitter or loss: the benchmark measures the event
	// machinery, not the RNG.
	link := netsim.Link{Delay: time.Millisecond}
	sim := netsim.New(netsim.Config{
		Seed:    1,
		Profile: func(_, _ id.Node) netsim.Link { return link },
	})
	var n1 *echoNode
	sim.AddNode(1, func(env proto.Env) proto.Handler {
		n1 = &echoNode{env: env, peer: 2}
		return n1
	})
	sim.AddNode(2, func(env proto.Env) proto.Handler {
		return &echoNode{env: env, peer: 1}
	})
	msg := SampleDataMessage()
	sim.At(0, func() {
		for i := 0; i < netsimInflight; i++ {
			n1.env.Send(2, msg)
		}
	})
	// Warm one window so the queue, pools and link state exist.
	horizon := 10 * time.Millisecond
	sim.Run(horizon)
	b.ReportAllocs()
	b.ResetTimer()
	for steps := 0; steps < b.N; {
		horizon += time.Millisecond
		steps += sim.Run(horizon)
	}
}

// udpWindow is the number of datagrams the UDP throughput benchmark
// sends before draining the receiver: one transport batch worth, small
// enough (~20KB of ~600-byte datagrams) that loopback socket buffers
// absorb the burst without loss.
const udpWindow = transport.DefaultBatch

// udpInflight is how many send windows the UDP throughput benchmark
// keeps in flight before waiting for receiver credit: deep enough that
// the sender never idles on receiver latency, shallow enough
// (udpInflight × udpWindow × ~600B ≈ 75KB) that loopback socket
// buffers absorb the backlog without loss.
const udpInflight = 4

// UDPThroughput measures moving one steady-state data message across a
// real loopback UDP socket pair, in credit-windowed pipelined bursts of
// udpWindow coalesced sends. batch selects the I/O path:
// transport.DefaultBatch exercises the recvmmsg/sendmmsg batcher where
// available, 1 forces the portable one-syscall-per-datagram path — the
// ratio of the two is the syscall batching win. Each op is one datagram
// end to end, so msgs/sec is the reciprocal of ns/op. Zero allocs/op in
// the steady state.
func UDPThroughput(b *testing.B, batch int) {
	src, err := transport.ListenUDP(1, "127.0.0.1:0",
		transport.WithBatchSize(batch), transport.WithDecodeWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	dst, err := transport.ListenUDP(2, "127.0.0.1:0",
		transport.WithBatchSize(batch), transport.WithDecodeWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	if err := src.AddPeer(2, dst.LocalAddr().String()); err != nil {
		b.Fatal(err)
	}
	msg := SampleDataMessage()
	sendWindow := func(w int) {
		for i := 0; i < w; i++ {
			if err := src.SendBatch(2, msg); err != nil {
				b.Fatal(err)
			}
		}
		if err := src.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	// drain consumes windows of w datagrams, releasing one credit per
	// window. Loopback UDP may still drop under scheduler stalls; a
	// per-window timeout turns a shortfall into credit instead of a
	// deadlock.
	drain := func(total int, creds chan<- struct{}, done chan<- struct{}) {
		timeout := time.NewTimer(time.Second)
		defer timeout.Stop()
		for got := 0; got < total; {
			w := udpWindow
			if rem := total - got; rem < w {
				w = rem
			}
			if !timeout.Stop() {
				select {
				case <-timeout.C:
				default:
				}
			}
			timeout.Reset(time.Second)
		window:
			for i := 0; i < w; i++ {
				select {
				case in := <-dst.Recv():
					wire.PutMessage(in.Msg)
				case <-timeout.C:
					break window // lost datagrams; keep measuring
				}
			}
			got += w
			creds <- struct{}{}
		}
		close(done)
	}
	// Warm one synchronous window so pools, peer tables and batcher
	// arrays exist before the timer starts.
	{
		creds := make(chan struct{}, 1)
		done := make(chan struct{})
		go drain(udpWindow, creds, done)
		sendWindow(udpWindow)
		<-done
	}
	creds := make(chan struct{}, udpInflight)
	for i := 0; i < udpInflight; i++ {
		creds <- struct{}{}
	}
	done := make(chan struct{})
	b.ReportAllocs()
	b.ResetTimer()
	go drain(b.N, creds, done)
	for sent := 0; sent < b.N; {
		w := udpWindow
		if rem := b.N - sent; rem < w {
			w = rem
		}
		<-creds
		sendWindow(w)
		sent += w
	}
	<-done
}

// TransportLoopback measures one datagram through the in-process fabric
// on a zero-delay link: pooled encode, inline delivery, decode into the
// receiver's queue.
func TransportLoopback(b *testing.B) {
	f := transport.NewFabric()
	src, err := f.Attach(1)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := f.Attach(2)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	msg := SampleDataMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(2, msg); err != nil {
			b.Fatal(err)
		}
		<-dst.Recv()
	}
}
