package benches

import (
	"testing"

	"scalamedia/internal/flightrec"
	"scalamedia/internal/stats"
	"scalamedia/internal/transport"
	"scalamedia/internal/wire"
)

func BenchmarkWireRoundTrip(b *testing.B) { WireRoundTrip(b) }

func BenchmarkRmcastMulticast(b *testing.B) {
	b.Run("full", RmcastMulticastFull)
	b.Run("encode", RmcastMulticastEncode)
	b.Run("instrumented", RmcastMulticastInstrumented)
	b.Run("total", RmcastMulticastTotal)
	b.Run("flow", RmcastMulticastFlow)
}

func BenchmarkTransportLoopback(b *testing.B) { TransportLoopback(b) }

func BenchmarkNetsimNodeStep(b *testing.B) { NetsimNodeStep(b) }

func BenchmarkUDPThroughput(b *testing.B) {
	b.Run("batch", func(b *testing.B) { UDPThroughput(b, transport.DefaultBatch) })
	b.Run("fallback", func(b *testing.B) { UDPThroughput(b, 1) })
}

// TestRmcastEncodeZeroAlloc pins the acceptance bar directly: encoding an
// engine-produced steady-state data message into a pooled buffer must not
// allocate.
func TestRmcastEncodeZeroAlloc(t *testing.T) {
	msg := CapturedDataMessage()
	bp := wire.GetBuf()
	defer wire.PutBuf(bp)
	*bp = msg.Encode((*bp)[:0]) // warm
	allocs := testing.AllocsPerRun(200, func() {
		*bp = msg.Encode((*bp)[:0])
	})
	if allocs >= 0.5 {
		t.Fatalf("multicast encode path allocates %.1f/op, want 0", allocs)
	}
}

// TestInstrumentedMulticastAddsNoAllocs pins the telemetry layer's
// overhead budget: a Multicast with a live registry and flight recorder
// must allocate exactly what the uninstrumented path does, and the
// instrumented encode path (what a transport Send performs on the
// produced message) must stay at zero.
func TestInstrumentedMulticastAddsNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; alloc counts are inflated")
	}
	reg := stats.NewRegistry()
	fr := flightrec.New(1024)
	eng, _, members := newBenchEngineWith(reg, fr)
	payload := make([]byte, 256)
	var st stabilizer
	for i := 0; i < 128; i++ {
		if err := eng.Multicast(payload); err != nil {
			t.Fatal(err)
		}
	}
	st.ack(eng, members, eng.Counters().Sent)
	allocs := testing.AllocsPerRun(200, func() {
		if err := eng.Multicast(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("instrumented Multicast allocates %.1f/op, want <= 4 (no telemetry overhead)", allocs)
	}
	if got := reg.Snapshot().Counters["rmcast.sent"]; got == 0 {
		t.Fatal("registry saw no sends: instrumentation not wired")
	}
	if fr.Len() == 0 {
		t.Fatal("flight recorder saw no sends: instrumentation not wired")
	}
}

// TestTotalOrderMulticastAllocNeutral pins the sharded total-order hot
// path at zero extra allocations: a Multicast through the range-ordering
// machinery (open-run accumulation, shard queueing, periodic range flush
// with merge directives) must fit the same <= 4 allocs/op budget as the
// FIFO path — the ORDER plane rides entirely on reused scratch.
func TestTotalOrderMulticastAllocNeutral(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; alloc counts are inflated")
	}
	res := testing.Benchmark(RmcastMulticastTotal)
	if allocs := res.AllocsPerOp(); allocs > 4 {
		t.Fatalf("total-order Multicast allocates %d/op, want <= 4 (0 extra over FIFO)", allocs)
	}
}

// TestFlowMulticastAllocNeutral pins the flow-control fast path at zero
// extra allocations: with FlowWindow armed and the window open, a
// Multicast must fit the same 3-alloc budget as the unwindowed path —
// the admission check is integer arithmetic on counters the engine
// already maintains.
func TestFlowMulticastAllocNeutral(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; alloc counts are inflated")
	}
	res := testing.Benchmark(RmcastMulticastFlow)
	if allocs := res.AllocsPerOp(); allocs > 3 {
		t.Fatalf("flow-controlled Multicast allocates %d/op, want <= 3 (0 extra over unwindowed)", allocs)
	}
}

// TestMulticastSteadyStateAllocs bounds the full per-multicast allocation
// budget: only the retained payload copy, the message struct, and the
// escaping outgoing copy — nothing per peer, nothing in the encode path.
func TestMulticastSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops Puts; alloc counts are inflated")
	}
	eng, _, members := newBenchEngine()
	payload := make([]byte, 256)
	var st stabilizer
	for i := 0; i < 128; i++ { // warm scratch, pools and peer state
		if err := eng.Multicast(payload); err != nil {
			t.Fatal(err)
		}
	}
	st.ack(eng, members, eng.Counters().Sent)
	allocs := testing.AllocsPerRun(200, func() {
		if err := eng.Multicast(payload); err != nil {
			t.Fatal(err)
		}
	})
	st.ack(eng, members, eng.Counters().Sent)
	if allocs > 4 {
		t.Fatalf("Multicast allocates %.1f/op, want <= 4 (payload copy, message, out-copy)", allocs)
	}
}
