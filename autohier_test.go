package scalamedia

import (
	"fmt"
	"testing"
	"time"
)

// TestAutoHierSessionOverUDP is the facade smoke for the self-organizing
// hierarchy: a four-node session over loopback UDP with AutoHier enabled
// must join through the flat membership layer, form its overlay from live
// RTT probes, and route an application multicast through the formed tree
// to every participant, the sender included (the overlay self-delivers
// like the flat path does).
func TestAutoHierSessionOverUDP(t *testing.T) {
	logs := make(map[NodeID]*eventLog)
	start := func(self NodeID, contactAddr string) (*Node, error) {
		logs[self] = &eventLog{}
		cfg := Config{
			Self: self, ListenAddr: "127.0.0.1:0", Group: 1,
			AutoHier:   true,
			HierFanOut: 3,
			Tick:       5 * time.Millisecond,
			OnEvent:    logs[self].add,
		}
		if contactAddr != "" {
			cfg.Contact = 1
			cfg.Peers = map[NodeID]string{1: contactAddr}
		}
		return Start(cfg)
	}
	a, err := start(1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	nodes := []*Node{a}
	for self := NodeID(2); self <= 4; self++ {
		n, err := start(self, a.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		if !n.WaitViewSize(4, 15*time.Second) {
			t.Fatalf("node %v never saw the 4-member view: %+v", n.ID(), n.View())
		}
	}
	if err := nodes[2].Send([]byte("through the overlay")); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		n := n
		waitFor(t, fmt.Sprintf("overlay delivery at node %v", n.ID()), func() bool {
			return logs[n.ID()].count(MessageReceived) > 0
		})
		if got := logs[n.ID()].firstPayload(); got != "through the overlay" {
			t.Fatalf("node %v payload = %q", n.ID(), got)
		}
	}
}
