package scalamedia

import (
	"errors"
	"testing"
	"time"
)

// TestSelfConfiguringGroupOverUDP boots a three-node group over loopback
// UDP with the minimum possible configuration: the contact (n1) has no
// static peers at all, and each joiner knows only the contact's address.
// Convergence therefore requires the whole self-healing pipeline — the
// contact learns the joiners' return addresses from their join datagrams,
// and the joiners learn each other's addresses from the member→address
// map carried in view commits. The final multicast crosses the n2↔n3
// edge, which no configuration ever described.
func TestSelfConfiguringGroupOverUDP(t *testing.T) {
	a, err := Start(Config{Self: 1, ListenAddr: "127.0.0.1:0", Group: 1,
		Tick: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	logC := &eventLog{}
	joiner := func(self NodeID, log *eventLog) (*Node, error) {
		var onEvent func(Event)
		if log != nil {
			onEvent = log.add
		}
		return Start(Config{
			Self: self, ListenAddr: "127.0.0.1:0", Group: 1, Contact: 1,
			Peers:   map[NodeID]string{1: a.Addr()},
			Tick:    5 * time.Millisecond,
			OnEvent: onEvent,
		})
	}
	b, err := joiner(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := joiner(3, logC)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, n := range []*Node{a, b, c} {
		if !n.WaitViewSize(3, 15*time.Second) {
			t.Fatalf("node %v never saw the 3-member view: %+v", n.ID(), n.View())
		}
	}
	// n2→n3 traffic exercises the joiner↔joiner edge that only address
	// redistribution could have established.
	if err := b.Send([]byte("learned route")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "message across the learned edge", func() bool {
		return logC.count(MessageReceived) > 0
	})
	if got := logC.firstPayload(); got != "learned route" {
		t.Fatalf("payload = %q", got)
	}
}

// TestJoinFailedEventOverUDP pins the facade surface of the bounded join:
// a node pointed at a dead contact with a small attempt cap emits exactly
// one JoinFailed event whose cause is ErrJoinUnreachable.
func TestJoinFailedEventOverUDP(t *testing.T) {
	log := &eventLog{}
	n, err := Start(Config{
		Self: 7, ListenAddr: "127.0.0.1:0", Group: 1, Contact: 1,
		// 127.0.0.1:1 is a black hole for our datagrams in practice; the
		// join can never be acknowledged.
		Peers:          map[NodeID]string{1: "127.0.0.1:1"},
		Tick:           5 * time.Millisecond,
		JoinAttempts:   3,
		JoinBackoffMax: 100 * time.Millisecond,
		OnEvent:        log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	waitFor(t, "JoinFailed event", func() bool { return log.count(JoinFailed) > 0 })
	log.mu.Lock()
	defer log.mu.Unlock()
	for _, ev := range log.events {
		if ev.Kind == JoinFailed && !errors.Is(ev.Err, ErrJoinUnreachable) {
			t.Fatalf("JoinFailed cause = %v, want ErrJoinUnreachable", ev.Err)
		}
	}
}
