package scalamedia

import (
	"sync"
	"testing"
	"time"

	"scalamedia/internal/media"
	"scalamedia/internal/transport"
)

// eventLog is a concurrency-safe session event recorder.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) add(ev Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) count(k EventKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

func (l *eventLog) firstPayload() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if ev.Kind == MessageReceived {
			return string(ev.Payload)
		}
	}
	return ""
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// startFabricPair boots two nodes on an in-process fabric.
func startFabricPair(t *testing.T) (*Node, *Node, *eventLog, *eventLog) {
	t.Helper()
	fab := transport.NewFabric(transport.WithSeed(1))
	t.Cleanup(fab.Close)
	epA, err := fab.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := fab.Attach(2)
	if err != nil {
		t.Fatal(err)
	}
	logA, logB := &eventLog{}, &eventLog{}
	a, err := Start(Config{
		Self: 1, Endpoint: epA, Group: 1,
		Tick:           5 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
		SuspectAfter:   400 * time.Millisecond,
		OnEvent:        logA.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := Start(Config{
		Self: 2, Endpoint: epB, Group: 1, Contact: 1,
		Tick:           5 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
		SuspectAfter:   400 * time.Millisecond,
		OnEvent:        logB.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b, logA, logB
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Fatal("zero Self accepted")
	}
}

func TestNodeJoinSendReceive(t *testing.T) {
	a, b, _, logB := startFabricPair(t)
	waitFor(t, "view of size 2", func() bool {
		return a.View().Size() == 2 && b.View().Size() == 2
	})
	if err := a.Send([]byte("group hello")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "message at b", func() bool { return logB.count(MessageReceived) > 0 })
	if got := logB.firstPayload(); got != "group hello" {
		t.Fatalf("payload = %q", got)
	}
	if logB.count(ParticipantJoined) == 0 {
		t.Fatal("no join events")
	}
}

func TestNodeOverUDP(t *testing.T) {
	logB := &eventLog{}
	a, err := Start(Config{Self: 1, ListenAddr: "127.0.0.1:0", Group: 1,
		Tick: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start(Config{
		Self: 2, ListenAddr: "127.0.0.1:0", Group: 1, Contact: 1,
		Peers:   map[NodeID]string{1: a.Addr()},
		Tick:    5 * time.Millisecond,
		OnEvent: logB.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer(2, b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "UDP view of size 2", func() bool {
		return a.View().Size() == 2 && b.View().Size() == 2
	})
	if err := a.Send([]byte("over udp")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "udp message", func() bool { return logB.count(MessageReceived) > 0 })
	if a.ID() != 1 || a.Addr() == "" {
		t.Fatalf("ID/Addr broken: %v %q", a.ID(), a.Addr())
	}
}

func TestMediaOverFabric(t *testing.T) {
	a, b, _, logB := startFabricPair(t)
	waitFor(t, "view", func() bool { return a.View().Size() == 2 && b.View().Size() == 2 })

	spec := media.TelephoneAudio(1, "mic")
	sender, err := a.OpenSender(spec, 8000)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "directory at b", func() bool { return len(b.Directory()) == 1 })
	dir := b.Directory()
	if dir[0].Owner != 1 || dir[0].Spec.Name != "mic" {
		t.Fatalf("directory = %+v", dir)
	}

	var played struct {
		mu sync.Mutex
		n  int
	}
	recv, err := b.OpenReceiver(ReceiverConfig{
		Spec: dir[0].Spec,
		Mode: FixedDelay, PlayoutDelay: 30 * time.Millisecond,
		OnPlay: func(Frame, time.Time) {
			played.mu.Lock()
			played.n++
			played.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	src := media.NewCBR(spec, 160, 10)
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		if !sender.Send(f) {
			t.Fatal("frame rejected without QoS budget")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitFor(t, "frames played", func() bool {
		played.mu.Lock()
		defer played.mu.Unlock()
		return played.n == 10
	})
	st := recv.Stats()
	if st.Received != 10 || st.Played != 10 {
		t.Fatalf("receiver stats = %+v", st)
	}
	frames, bytes := sender.Stats()
	if frames != 10 || bytes != 1600 {
		t.Fatalf("sender stats = %d/%d", frames, bytes)
	}
	_ = logB
}

func TestQoSAdmissionOnSender(t *testing.T) {
	fab := transport.NewFabric()
	defer fab.Close()
	ep, _ := fab.Attach(1)
	n, err := Start(Config{Self: 1, Endpoint: ep, Group: 1,
		Tick: 5 * time.Millisecond, MediaCapacity: 10000})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	waitFor(t, "bootstrap view", func() bool { return n.View().Size() == 1 })

	if _, err := n.OpenSender(media.TelephoneAudio(1, "a"), 8000); err != nil {
		t.Fatalf("first stream rejected: %v", err)
	}
	if _, err := n.OpenSender(media.PALVideo(2, "v"), 8000); err == nil {
		t.Fatal("over-budget stream admitted")
	}
}

func TestLeaveShrinksView(t *testing.T) {
	a, b, logA, _ := startFabricPair(t)
	waitFor(t, "view", func() bool { return a.View().Size() == 2 })
	b.Leave()
	b.Close()
	waitFor(t, "view back to 1", func() bool { return a.View().Size() == 1 })
	if logA.count(ParticipantLeft) == 0 {
		t.Fatal("no leave event")
	}
}

func TestCloseIdempotentAndSendAfterClose(t *testing.T) {
	fab := transport.NewFabric()
	defer fab.Close()
	ep, _ := fab.Attach(1)
	n, err := Start(Config{Self: 1, Endpoint: ep, Group: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Send([]byte("x")); err == nil {
		t.Fatal("send after close succeeded")
	}
}
