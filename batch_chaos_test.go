package scalamedia

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scalamedia/internal/transport"
)

// TestBatchedTransportChaosMatrix re-runs the invariant catalogue from
// internal/chaos over the live batched data plane: every node's runner
// routes sends through SendBatch/Flush (the fabric endpoints implement
// transport.BatchSender), so the coalescing layer sits under a lossy,
// duplicating, jittery network. For each (ordering, seed) cell the test
// asserts, after the reliability layer has recovered:
//
//   - no duplication: each receiver delivers every (sender, index)
//     payload at most once;
//   - no creation: every delivered payload was actually sent;
//   - per-sender FIFO: each receiver sees each sender's payloads in
//     send order with nothing missing;
//   - view convergence: all nodes agree on the full membership.
func TestBatchedTransportChaosMatrix(t *testing.T) {
	type cell struct {
		ordering Ordering
		seed     int64
	}
	cells := []cell{
		{FIFO, 1}, {FIFO, 2},
		{Causal, 1}, {Causal, 2},
	}
	if testing.Short() {
		cells = cells[:1]
	}
	for _, c := range cells {
		c := c
		t.Run(fmt.Sprintf("ord=%v/seed=%d", c.ordering, c.seed), func(t *testing.T) {
			t.Parallel()
			runBatchChaosCell(t, c.ordering, c.seed)
		})
	}
}

// chaosRecorder captures per-receiver delivery order keyed by sender.
type chaosRecorder struct {
	mu       sync.Mutex
	bySender map[NodeID][]string // payloads in delivery order
}

func (r *chaosRecorder) add(ev Event) {
	if ev.Kind != MessageReceived {
		return
	}
	r.mu.Lock()
	r.bySender[ev.Node] = append(r.bySender[ev.Node], string(ev.Payload))
	r.mu.Unlock()
}

func (r *chaosRecorder) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ps := range r.bySender {
		n += len(ps)
	}
	return n
}

func runBatchChaosCell(t *testing.T, ord Ordering, seed int64) {
	const (
		nodes   = 4
		perNode = 25
	)
	fab := transport.NewFabric(
		transport.WithSeed(seed),
		transport.WithDefaultLink(transport.LinkConfig{
			Delay:     time.Millisecond,
			Jitter:    3 * time.Millisecond,
			Loss:      0.03,
			Duplicate: 0.02,
		}),
	)
	t.Cleanup(fab.Close)

	members := make([]*Node, 0, nodes)
	recs := make([]*chaosRecorder, 0, nodes)
	for i := 1; i <= nodes; i++ {
		ep, err := fab.Attach(NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ep.(transport.BatchSender); !ok {
			t.Fatal("fabric endpoint lost its BatchSender surface")
		}
		rec := &chaosRecorder{bySender: make(map[NodeID][]string)}
		cfg := Config{
			Self: NodeID(i), Endpoint: ep, Group: 1,
			Ordering:       ord,
			Tick:           5 * time.Millisecond,
			HeartbeatEvery: 50 * time.Millisecond,
			SuspectAfter:   5 * time.Second, // loss must not read as failure
			OnEvent:        rec.add,
		}
		if i > 1 {
			cfg.Contact = 1
		}
		n, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		members = append(members, n)
		recs = append(recs, rec)
	}

	waitFor(t, "full view on every node", func() bool {
		for _, n := range members {
			if n.View().Size() != nodes {
				return false
			}
		}
		return true
	})

	// Every node multicasts its numbered payloads; the lossy fabric and
	// the coalesced send path both sit under this traffic.
	for i, n := range members {
		for k := 0; k < perNode; k++ {
			if err := n.Send([]byte(fmt.Sprintf("n%d-%03d", i+1, k))); err != nil {
				t.Fatalf("node %d send %d: %v", i+1, k, err)
			}
		}
	}

	// Each receiver must recover every payload from every sender (the
	// session also delivers a node's own multicasts back to it).
	want := nodes * perNode
	waitFor(t, "all payloads recovered through loss", func() bool {
		for _, rec := range recs {
			if rec.total() < want {
				return false
			}
		}
		return true
	})

	// Invariant catalogue over the recorded deliveries.
	for ri, rec := range recs {
		rec.mu.Lock()
		for sender, got := range rec.bySender {
			if len(got) != perNode {
				rec.mu.Unlock()
				t.Fatalf("node %d: %d payloads from %d (duplication or loss), want %d",
					ri+1, len(got), sender, perNode)
			}
			for k, p := range got {
				if wantP := fmt.Sprintf("n%d-%03d", sender, k); p != wantP {
					rec.mu.Unlock()
					t.Fatalf("node %d: delivery %d from %d = %q, want %q (FIFO violation or creation)",
						ri+1, k, sender, p, wantP)
				}
			}
		}
		rec.mu.Unlock()
	}
}
