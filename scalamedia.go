// Package scalamedia is a Go implementation of the scalable architecture
// for reliable distributed multimedia applications described by Panzieri
// and Roccetti (ICDCS 1994; UBLCS-93-23): a layered communication
// infrastructure combining
//
//   - reliable group multicast with selectable ordering (unordered, FIFO,
//     causal, total) over unreliable datagrams,
//   - group membership with failure detection and flush-based view
//     changes (approximate virtual synchrony),
//   - a hierarchical cluster organization for large groups,
//   - a real-time media channel with jitter-adaptive playout and
//     inter-media (lip-sync) synchronization, and
//   - QoS flow specifications with token-bucket policing and admission
//     control.
//
// This package is the live-deployment facade: a Node runs the whole stack
// over real UDP (or any transport.Endpoint) with one goroutine event
// loop. The same protocol engines run deterministically under virtual
// time in the discrete-event simulator (internal/netsim), which is how
// the repository reproduces the paper's evaluation; see DESIGN.md and
// EXPERIMENTS.md.
//
// # Quick start
//
//	first, _ := scalamedia.Start(scalamedia.Config{
//		Self: 1, ListenAddr: "127.0.0.1:7001", Group: 1,
//	})
//	second, _ := scalamedia.Start(scalamedia.Config{
//		Self: 2, ListenAddr: "127.0.0.1:7002", Group: 1, Contact: 1,
//		Peers:   map[scalamedia.NodeID]string{1: "127.0.0.1:7001"},
//		OnEvent: func(ev scalamedia.Event) { fmt.Println(ev.Kind) },
//	})
//	// first learns second's return address from the join traffic — only
//	// the contact's address is ever configured.
//	// ... wait for the view to include both, then:
//	first.Send([]byte("hello, group"))
package scalamedia

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"scalamedia/internal/flightrec"
	"scalamedia/internal/id"
	"scalamedia/internal/media"
	"scalamedia/internal/member"
	"scalamedia/internal/msync"
	"scalamedia/internal/noderun"
	"scalamedia/internal/proto"
	"scalamedia/internal/qos"
	"scalamedia/internal/rmcast"
	"scalamedia/internal/rtx"
	"scalamedia/internal/session"
	"scalamedia/internal/stats"
	"scalamedia/internal/transport"
	"scalamedia/internal/wire"
)

// Re-exported identifier and protocol types. The aliases make the public
// API self-contained: users never import internal packages.
type (
	// NodeID identifies a host process.
	NodeID = id.Node
	// GroupID identifies a process group.
	GroupID = id.Group
	// StreamID identifies a media stream.
	StreamID = id.Stream
	// View is an installed membership configuration.
	View = member.View
	// Ordering selects the multicast delivery discipline.
	Ordering = rmcast.Ordering
	// Suppression tunes the SRM-style randomized loss-recovery timers
	// (request/repair timer constants, local-repair sampling, damping).
	Suppression = rmcast.Suppression
	// Event is a session notification.
	Event = session.Event
	// EventKind discriminates session notifications.
	EventKind = session.EventKind
	// Announcement is a stream directory entry.
	Announcement = session.Announcement
	// StreamSpec describes a media stream.
	StreamSpec = media.StreamSpec
	// Frame is one media data unit.
	Frame = media.Frame
	// FlowSpec is a QoS traffic contract.
	FlowSpec = qos.FlowSpec
	// PlayoutMode selects fixed or adaptive playout buffering.
	PlayoutMode = rtx.PlayoutMode
	// MediaStats summarizes a media receiver.
	MediaStats = rtx.Stats
	// Advice is a media sender's rate-adaptation recommendation derived
	// from receiver reports.
	Advice = rtx.Advice
	// QualityReport is one receiver's quality feedback.
	QualityReport = rtx.Report
	// SlowPolicy selects how the session treats a member that is alive
	// but not draining multicast traffic (see ThrottleToSlowest and
	// EvictSlow).
	SlowPolicy = member.SlowPolicy
)

// Re-exported constants.
const (
	// Unordered delivers multicasts on first receipt.
	Unordered = rmcast.Unordered
	// FIFO delivers each sender's multicasts in send order.
	FIFO = rmcast.FIFO
	// Causal delivers multicasts respecting potential causality.
	Causal = rmcast.Causal
	// Total delivers multicasts in one agreed order everywhere.
	Total = rmcast.Total

	// FixedDelay plays media at capture time plus a constant delay.
	FixedDelay = rtx.FixedDelay
	// Adaptive adjusts the playout delay to measured jitter.
	Adaptive = rtx.Adaptive

	// Hold, Decrease and Increase re-export the rate-adaptation advice.
	Hold     = rtx.Hold
	Decrease = rtx.Decrease
	Increase = rtx.Increase

	// ParticipantJoined et al. re-export the session event kinds.
	ParticipantJoined = session.ParticipantJoined
	ParticipantLeft   = session.ParticipantLeft
	StreamAnnounced   = session.StreamAnnounced
	StreamWithdrawn   = session.StreamWithdrawn
	MessageReceived   = session.MessageReceived
	SelfEvicted       = session.SelfEvicted
	// JoinFailed reports that the join attempt cap was exhausted; see
	// Config.JoinAttempts.
	JoinFailed = session.JoinFailed
	// ObjectReceived reports a completed bulk-object transfer (see
	// Node.Publish); Event.Object names it and Event.Payload holds its
	// bytes.
	ObjectReceived = session.ObjectReceived
	// ObjectProgress reports bulk-transfer advancement: Event.Done of
	// Event.Total generations decoded.
	ObjectProgress = session.ObjectProgress
	// MemberSlow reports a participant crossing the slow threshold
	// (Event.Slow, Event.Lag); emitted only when Config.FlowWindow,
	// Config.SlowAfter or an EvictSlow policy enables slow tracking.
	MemberSlow = session.MemberSlow

	// ThrottleToSlowest (the default slow policy) never evicts for
	// slowness: the flow window backpressures senders to the laggard's
	// drain rate instead.
	ThrottleToSlowest = member.ThrottleToSlowest
	// EvictSlow removes a member still flagged slow after the
	// Config.SlowGrace budget, trading its membership for restored
	// group throughput.
	EvictSlow = member.EvictSlow
)

// Errors.
var (
	// ErrClosed reports an operation on a closed node.
	ErrClosed = errors.New("scalamedia: node closed")
	// ErrNotMember reports a session operation on a node the membership
	// service has evicted; the node must be closed and replaced with a
	// fresh one to rejoin.
	ErrNotMember = errors.New("scalamedia: node evicted from session")
	// ErrBackpressure reports a non-blocking send rejected because the
	// flow window (Config.FlowWindow) is full; returned by TrySend.
	// Send and SendContext block instead. Test with errors.Is.
	ErrBackpressure = rmcast.ErrBackpressure
	// ErrNoCapacity reports a media stream rejected by QoS admission.
	ErrNoCapacity = qos.ErrOverCommitted
	// ErrJoinUnreachable is the join-failure cause surfaced when
	// Config.JoinAttempts is exhausted without admission.
	ErrJoinUnreachable = member.ErrJoinUnreachable
)

// Config parameterizes a Node.
type Config struct {
	// Self is this node's cluster-unique ID. Required, nonzero.
	Self NodeID
	// ListenAddr is the UDP listen address ("127.0.0.1:0" picks a
	// port). Ignored when Endpoint is set.
	ListenAddr string
	// Endpoint overrides the transport (e.g. a transport.Fabric
	// endpoint for in-process demos). When nil, a UDP endpoint is
	// opened on ListenAddr.
	Endpoint transport.Endpoint
	// Group is the session group to participate in.
	Group GroupID
	// Contact is an existing member to join through; zero bootstraps a
	// new session.
	Contact NodeID
	// Peers maps node IDs to UDP addresses (UDP transport only). More
	// peers can be added later with AddPeer. Since the membership layer
	// learns return addresses from traffic and redistributes them in
	// view changes, a joiner normally needs only the contact's entry
	// here; everything else is self-configuring.
	Peers map[NodeID]string
	// AdvertiseAddr is the address this node asks the group to reach it
	// at, carried in its join request and redistributed in view changes.
	// Empty auto-derives from the bound UDP socket when its IP is
	// concrete; a node listening on a wildcard address that sits behind
	// NAT or multiple interfaces should set it explicitly.
	AdvertiseAddr string
	// JoinAttempts caps join retries before the node gives up and emits
	// a JoinFailed event (cause ErrJoinUnreachable). Zero retries
	// forever.
	JoinAttempts int
	// JoinBackoffMax caps the jittered exponential join retry backoff;
	// zero takes the membership default (16× the join retry base).
	JoinBackoffMax time.Duration
	// Ordering is the session multicast discipline; defaults to Causal.
	Ordering Ordering
	// OrderShards splits total-order sequencing across this many members
	// when Ordering is Total: each message's stream label hashes to a
	// shard, each shard to a sequencer member, and a deterministic merge
	// rule fixes one global delivery order across shards, so independent
	// streams stop serializing through one node. 0 or 1 keeps the
	// classic single-sequencer semantics. Ignored for other orderings.
	OrderShards int
	// Suppression tunes the SRM-style randomized loss-recovery timers.
	// The zero value takes the defaults; see rmcast.Suppression.
	Suppression Suppression
	// DisableSuppression reverts loss recovery to the per-receiver NACK
	// scheduler: every receiver asks the original sender directly on its
	// own timer, with no request suppression or local repair.
	DisableSuppression bool
	// PrimaryPartition applies the membership majority rule: a view
	// only installs on the side holding a strict majority of the old
	// view (an even split is won by the side holding the old view's
	// lowest member). A minority partition blocks instead of splitting
	// the group's brain.
	PrimaryPartition bool
	// AutoHier routes session multicasts through a self-organizing
	// hierarchical overlay: nodes measure peer RTTs, gravitate into
	// latency-near clusters under elected coordinators, and reshape the
	// tree as members join, leave or crash. Recovery and stability
	// traffic then stays within a cluster (or the small coordinator
	// set), so per-node control overhead scales with cluster size rather
	// than session size. Delivery becomes FIFO per sender regardless of
	// Ordering, and groups Group+1 through Group+3 are claimed for the
	// overlay's channels — leave them free of other sessions.
	AutoHier bool
	// HierFanOut bounds overlay cluster sizes (and every coordinator's
	// re-multicast fan-out) under AutoHier; zero takes the default (8).
	HierFanOut int
	// Tick overrides the protocol tick cadence.
	Tick time.Duration
	// MediaCapacity is the QoS budget for outgoing media in bytes per
	// second; zero disables admission control.
	MediaCapacity float64

	// FlowWindow bounds this node's unstable multicast history in
	// messages — the sender-side stability window. With the window full,
	// Send and SendContext block until stability frees slots and TrySend
	// returns ErrBackpressure. Zero disables flow control (unbounded
	// history, the historical behaviour). Flow control applies to the
	// flat multicast path; the AutoHier overlay bypasses it.
	FlowWindow int
	// FlowWindowBytes additionally bounds the window in payload bytes;
	// zero means no byte bound.
	FlowWindowBytes int
	// SlowAfter is the multicast ack lag (messages) past which a member
	// is flagged slow and a MemberSlow event fires; zero derives a
	// default from FlowWindow (equal to it, or 64 without one).
	SlowAfter int
	// SlowPolicy selects what happens to flagged members:
	// ThrottleToSlowest (default) paces senders via the flow window and
	// never evicts for slowness; EvictSlow removes a member still slow
	// after SlowGrace.
	SlowPolicy SlowPolicy
	// SlowGrace is the catch-up budget a slow member gets before
	// EvictSlow slates it; zero takes the default (2s).
	SlowGrace time.Duration
	// OnDegrade, when set, observes graceful media degradation: it is
	// called with the stream and shed byte count each time a media
	// sender sheds a droppable frame under overload. Called from the
	// event loop; must not block.
	OnDegrade func(StreamID, int)
	// OnEvent receives session notifications. It is called from the
	// node's event loop: do not block in it, and do not call Node
	// methods from it directly (hand work to another goroutine
	// instead) — they serialize through the same loop and would
	// deadlock.
	OnEvent func(Event)

	// Failure-detection timing (zero = defaults).
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration

	// UDPBatch caps the datagrams coalesced into one recvmmsg/sendmmsg
	// syscall on the UDP transport (zero means the transport default;
	// one disables batched syscalls and forces the portable
	// single-datagram path). Ignored when Endpoint is set.
	UDPBatch int
	// UDPDecodeWorkers sets the UDP transport's decode pool size (zero
	// means the transport default). One worker preserves datagram
	// arrival order; more may reorder, which every protocol layer
	// tolerates. Ignored when Endpoint is set.
	UDPDecodeWorkers int

	// MetricsAddr, when nonempty, serves the HTTP observability
	// endpoint on that address (":0" picks a port; read it back with
	// MetricsAddr). See ServeMetrics for the routes.
	MetricsAddr string
	// FlightRecorderSize overrides the flight-recorder ring capacity
	// (rounded up to a power of two; zero means the 4096 default).
	FlightRecorderSize int
}

// Node is one live participant: a transport endpoint, an event loop and
// the full protocol stack. All exported methods are safe for concurrent
// use.
type Node struct {
	cfg    Config
	ep     transport.Endpoint
	udp    *transport.UDPEndpoint // nil when Endpoint was supplied
	runner *noderun.Runner
	sess   *session.Engine
	mux    *proto.Mux
	admit  *qos.Controller
	reg    *stats.Registry
	flight *flightrec.Recorder

	// Flow-control wait plumbing: the event loop signals flowCh (cap 1,
	// non-blocking send) when a full flow window drains, waking one
	// blocked SendContext; hFlowBlocked accounts the time senders spent
	// blocked and mFramesShed the media frames shed under overload.
	flowCh       chan struct{}
	hFlowBlocked *stats.Histogram
	mFramesShed  *stats.Counter

	mu      sync.Mutex
	closed  bool
	msrv    *metricsServer
	senders []*MediaSender
	waiters []*viewWaiter
}

// viewWaiter pairs a view predicate with its completion signal.
type viewWaiter struct {
	pred func(View) bool
	ch   chan struct{}
}

// Start opens the transport and launches the node.
func Start(cfg Config) (*Node, error) {
	if cfg.Self == 0 {
		return nil, errors.New("scalamedia: Config.Self must be nonzero")
	}
	n := &Node{
		cfg:    cfg,
		reg:    stats.NewRegistry(),
		flight: flightrec.New(cfg.FlightRecorderSize),
		flowCh: make(chan struct{}, 1),
	}
	n.hFlowBlocked = n.reg.Histogram("rmcast.flow_blocked_ms")
	n.mFramesShed = n.reg.Counter("media.frames_shed")
	if cfg.Endpoint != nil {
		n.ep = cfg.Endpoint
	} else {
		addr := cfg.ListenAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var uopts []transport.UDPOption
		if cfg.UDPBatch > 0 {
			uopts = append(uopts, transport.WithBatchSize(cfg.UDPBatch))
		}
		if cfg.UDPDecodeWorkers > 0 {
			uopts = append(uopts, transport.WithDecodeWorkers(cfg.UDPDecodeWorkers))
		}
		udp, err := transport.ListenUDP(cfg.Self, addr, uopts...)
		if err != nil {
			return nil, fmt.Errorf("open transport: %w", err)
		}
		for peer, paddr := range cfg.Peers {
			if err := udp.AddPeer(peer, paddr); err != nil {
				udp.Close()
				return nil, fmt.Errorf("peer %s: %w", peer, err)
			}
		}
		n.udp = udp
		n.ep = udp
	}
	if cfg.MediaCapacity > 0 {
		n.admit = qos.NewController(cfg.MediaCapacity)
		if cfg.OnDegrade != nil {
			n.admit.SetOnDegrade(cfg.OnDegrade)
		}
	}
	if inst, ok := n.ep.(transport.Instrumented); ok {
		inst.SetMetrics(n.reg)
	}

	// Advertise the bound socket address when the caller did not choose
	// one, so the membership layer's address exchange works without
	// configuration. A wildcard listen IP is not advertisable — peers
	// would learn 0.0.0.0 — so only concrete IPs auto-derive.
	advertise := cfg.AdvertiseAddr
	if advertise == "" && n.udp != nil {
		if la := n.udp.LocalAddr(); la != nil && len(la.IP) > 0 && !la.IP.IsUnspecified() {
			advertise = la.String()
		}
	}
	// Learned member addresses teach the UDP peer table, so admitted
	// members can reach each other without static -peer configuration.
	var onPeerAddr func(NodeID, string)
	if n.udp != nil {
		udp := n.udp
		onPeerAddr = func(peer NodeID, addr string) { _ = udp.LearnPeer(peer, addr) }
	}

	var opts []noderun.Option
	if cfg.Tick > 0 {
		opts = append(opts, noderun.WithTick(cfg.Tick))
	}
	n.runner = noderun.Start(n.ep, func(env proto.Env) proto.Handler {
		n.sess = session.New(env, session.Config{
			Group:              cfg.Group,
			Contact:            cfg.Contact,
			Ordering:           cfg.Ordering,
			OrderShards:        cfg.OrderShards,
			Suppression:        cfg.Suppression,
			DisableSuppression: cfg.DisableSuppression,
			PrimaryPartition:   cfg.PrimaryPartition,
			AutoHier:           cfg.AutoHier,
			HierFanOut:         cfg.HierFanOut,
			HeartbeatEvery:     cfg.HeartbeatEvery,
			SuspectAfter:       cfg.SuspectAfter,
			JoinAttempts:       cfg.JoinAttempts,
			JoinBackoffMax:     cfg.JoinBackoffMax,
			AdvertiseAddr:      advertise,
			OnPeerAddr:         onPeerAddr,
			FlowWindow:         cfg.FlowWindow,
			FlowWindowBytes:    cfg.FlowWindowBytes,
			SlowAfter:          cfg.SlowAfter,
			SlowPolicy:         cfg.SlowPolicy,
			SlowGrace:          cfg.SlowGrace,
			OnFlowOpen:         n.flowOpened,
			Metrics:            n.reg,
			Flight:             n.flight,
			OnEvent:            n.onEvent,
		})
		n.mux = proto.NewMux(n.sess)
		return n.mux
	}, opts...)
	expvarRegister(n)
	if cfg.MetricsAddr != "" {
		if _, err := n.ServeMetrics(cfg.MetricsAddr); err != nil {
			n.Close()
			return nil, err
		}
	}
	return n, nil
}

// onEvent tracks views for media sender peer lists, wakes view waiters,
// and forwards to the application.
func (n *Node) onEvent(ev Event) {
	if ev.Kind == session.ParticipantJoined || ev.Kind == session.ParticipantLeft ||
		ev.Kind == session.SelfEvicted {
		if ev.Kind != session.SelfEvicted {
			n.mu.Lock()
			senders := append([]*MediaSender(nil), n.senders...)
			n.mu.Unlock()
			for _, ms := range senders {
				ms.sender.SetPeers(ev.View.Members)
			}
		}
		n.wakeWaiters(ev.View)
	}
	if n.cfg.OnEvent != nil {
		n.cfg.OnEvent(ev)
	}
}

// wakeWaiters signals every registered waiter whose predicate the view
// satisfies.
func (n *Node) wakeWaiters(v View) {
	n.mu.Lock()
	kept := n.waiters[:0]
	var woken []*viewWaiter
	for _, w := range n.waiters {
		if w.pred(v) {
			woken = append(woken, w)
		} else {
			kept = append(kept, w)
		}
	}
	n.waiters = kept
	n.mu.Unlock()
	for _, w := range woken {
		close(w.ch)
	}
}

// removeWaiter unregisters w if it is still pending.
func (n *Node) removeWaiter(w *viewWaiter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, x := range n.waiters {
		if x == w {
			n.waiters = append(n.waiters[:i], n.waiters[i+1:]...)
			return
		}
	}
}

// WaitView blocks until the membership view satisfies pred or timeout
// elapses, and reports whether the predicate was met. The predicate is
// evaluated against the current view immediately and then on every
// membership change, so callers wait on events instead of polling.
// WaitView must not be called from the OnEvent callback (it would
// deadlock the event loop); pred may be called from multiple goroutines
// and must not block.
func (n *Node) WaitView(timeout time.Duration, pred func(View) bool) bool {
	w := &viewWaiter{pred: pred, ch: make(chan struct{})}
	n.mu.Lock()
	n.waiters = append(n.waiters, w)
	n.mu.Unlock()
	if pred(n.View()) {
		n.removeWaiter(w)
		return true
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w.ch:
		return true
	case <-timer.C:
		n.removeWaiter(w)
		return false
	}
}

// WaitViewSize blocks until the view has exactly n members; see WaitView.
func (n *Node) WaitViewSize(size int, timeout time.Duration) bool {
	return n.WaitView(timeout, func(v View) bool { return v.Size() == size })
}

// ID returns this node's ID.
func (n *Node) ID() NodeID { return n.cfg.Self }

// Addr returns the bound UDP address ("" for custom endpoints), useful
// with port 0.
func (n *Node) Addr() string {
	if n.udp == nil {
		return ""
	}
	return n.udp.LocalAddr().String()
}

// AddPeer registers a remote node's UDP address. It fails on custom
// endpoints, which carry their own addressing.
func (n *Node) AddPeer(peer NodeID, addr string) error {
	if n.udp == nil {
		return errors.New("scalamedia: AddPeer requires the UDP transport")
	}
	return n.udp.AddPeer(peer, addr)
}

// View returns the current session membership.
func (n *Node) View() View {
	var v View
	n.runner.Do(func() { v = n.sess.View() })
	return v
}

// Evicted reports whether the membership service removed this node from
// the session (a lost partition or a false suspicion). An evicted node
// also receives a SelfEvicted event; it must be closed and replaced with
// a fresh node to rejoin.
func (n *Node) Evicted() bool {
	var ev bool
	n.runner.Do(func() { ev = n.sess.Evicted() })
	return ev
}

// Directory returns the current stream directory.
func (n *Node) Directory() []Announcement {
	var d []Announcement
	n.runner.Do(func() { d = n.sess.Directory() })
	return d
}

// flowOpened is the rmcast layer's signal that a full flow window has
// drained below its bound; it wakes one blocked SendContext. Called from
// the event loop; the cap-1 channel send never blocks.
func (n *Node) flowOpened() {
	select {
	case n.flowCh <- struct{}{}:
	default:
	}
}

// trySend attempts one multicast on the event loop, mapping the node's
// terminal states to their typed errors.
func (n *Node) trySend(payload []byte) error {
	err := ErrClosed
	n.runner.Do(func() {
		if n.sess.Evicted() {
			err = ErrNotMember
			return
		}
		err = n.sess.Send(payload)
	})
	return err
}

// Send multicasts an application message to the session. With a flow
// window configured (Config.FlowWindow) and full, Send blocks until
// stability frees window slots; use SendContext to bound the wait or
// TrySend to fail fast with ErrBackpressure. On a closed node Send
// returns ErrClosed; on an evicted node, ErrNotMember.
func (n *Node) Send(payload []byte) error {
	return n.SendContext(context.Background(), payload)
}

// TrySend is the non-blocking Send: a full flow window returns an error
// satisfying errors.Is(err, ErrBackpressure) instead of waiting.
func (n *Node) TrySend(payload []byte) error {
	return n.trySend(payload)
}

// SendContext is Send bounded by a context: a full flow window blocks
// until stability frees slots, the node closes, or ctx is done (whose
// error is then returned). Time spent blocked is recorded in the
// rmcast.flow_blocked_ms histogram.
func (n *Node) SendContext(ctx context.Context, payload []byte) error {
	err := n.trySend(payload)
	if err == nil || !errors.Is(err, ErrBackpressure) {
		return err
	}
	start := time.Now()
	defer func() {
		n.hFlowBlocked.Observe(float64(time.Since(start).Milliseconds()))
	}()
	// Poll as a fallback alongside the flow-open signal: the signal wakes
	// only one waiter per drain, and stability can also free slots
	// without crossing the reopen edge that fires it.
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-n.flowCh:
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
		err = n.trySend(payload)
		if err == nil || !errors.Is(err, ErrBackpressure) {
			return err
		}
	}
}

// Publish disseminates a bulk object (a media file, a codebook, a
// pre-distributed clip) to every participant via erasure-coded scatter
// and peer relay: the publisher transmits on the order of the object
// size once, not once per member. Receivers get ObjectProgress events
// while symbols arrive and one ObjectReceived event with the object
// bytes when their copy reconstructs. Object IDs at or above 1<<63 are
// reserved for the session's internal state transfer.
// Returns ErrClosed on a closed node and ErrNotMember on an evicted one.
func (n *Node) Publish(objID uint64, data []byte) error {
	err := ErrClosed
	n.runner.Do(func() {
		if n.sess.Evicted() {
			err = ErrNotMember
			return
		}
		err = n.sess.Publish(objID, data)
	})
	return err
}

// Fetch returns a completed bulk object's bytes (published locally or
// received from the session), and whether it is available.
func (n *Node) Fetch(objID uint64) ([]byte, bool) {
	var (
		data []byte
		ok   bool
	)
	n.runner.Do(func() { data, ok = n.sess.Fetch(objID) })
	return data, ok
}

// Leave announces departure; call Close afterwards.
func (n *Node) Leave() {
	n.runner.Do(func() { n.sess.Leave() })
}

// Close stops the event loop and the transport. Close is idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	msrv := n.msrv
	n.msrv = nil
	n.mu.Unlock()
	expvarUnregister(n)
	if msrv != nil {
		msrv.srv.Close()
	}
	n.runner.Stop()
	if err := n.ep.Close(); err != nil {
		return fmt.Errorf("close transport: %w", err)
	}
	return nil
}

// MediaSender publishes one media stream to the session.
type MediaSender struct {
	node   *Node
	sender *rtx.Sender
	spec   StreamSpec
}

// OpenSender announces a media stream (entered in every participant's
// directory) and returns a sender for its frames. meanRate declares the
// sustained rate in bytes per second; when the node has a QoS budget the
// flow must fit it, and the returned sender is policed at the declared
// peak (twice the mean by default).
func (n *Node) OpenSender(spec StreamSpec, meanRate float64) (*MediaSender, error) {
	var policer *qos.TokenBucket
	if n.admit != nil {
		var err error
		policer, err = n.admit.Admit(qos.FlowSpec{Stream: spec.ID, MeanRate: meanRate})
		if err != nil {
			return nil, fmt.Errorf("admit stream %s: %w", spec.ID, err)
		}
	}
	ms := &MediaSender{node: n}
	ok := n.runner.Do(func() {
		// Build inside the loop: rtx.Sender is loop-affine.
		env := loopEnv{node: n}
		ms.sender = rtx.NewSender(env, n.cfg.Group, spec)
		ms.sender.SetPeers(n.sess.View().Members)
		if policer != nil {
			ms.sender.SetPolicer(policer)
		}
		ms.spec = spec
		// Mux the sender so receiver quality reports reach it.
		n.mux.Add(ms.sender)
	})
	if !ok {
		return nil, ErrClosed
	}
	if err := n.announce(spec, meanRate); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.senders = append(n.senders, ms)
	n.mu.Unlock()
	return ms, nil
}

func (n *Node) announce(spec StreamSpec, meanRate float64) error {
	err := ErrClosed
	n.runner.Do(func() { err = n.sess.Announce(spec, meanRate) })
	return err
}

// Send transmits one frame to every current participant. It reports
// whether the frame conformed to the stream's QoS contract and was sent.
//
// Frames marked Droppable participate in graceful degradation: under
// multicast flow-control pushback (the group is pacing to a slow
// receiver) or when the QoS policer rejects them, they are shed —
// counted in media.frames_shed, recorded in the flight ring and
// reported through Config.OnDegrade — and Send returns false. Unmarked
// frames are treated as essential: they are never shed proactively and
// fail only by the policer's own verdict. Reliable control traffic
// (Node.Send multicasts) is never shed, only backpressured.
func (ms *MediaSender) Send(f Frame) bool {
	admitted := false
	ms.node.runner.Do(func() {
		if f.Droppable && ms.node.sess.Stack().FlowBlocked() {
			ms.shed(f)
			return
		}
		admitted = ms.sender.Send(f)
		if !admitted && f.Droppable {
			ms.shed(f)
		}
	})
	return admitted
}

// shed accounts one frame dropped by graceful degradation. Runs on the
// event loop.
func (ms *MediaSender) shed(f Frame) {
	n := ms.node
	n.mFramesShed.Inc()
	n.flight.Record(uint64(n.cfg.Self), time.Now().UnixMilli(),
		flightrec.EvFrameShed, uint64(f.Stream), f.Seq)
	if n.admit != nil {
		n.admit.NotifyDegrade(f.Stream, len(f.Data))
	} else if n.cfg.OnDegrade != nil {
		n.cfg.OnDegrade(f.Stream, len(f.Data))
	}
}

// Stats returns frames and bytes sent.
func (ms *MediaSender) Stats() (frames, bytes uint64) {
	ms.node.runner.Do(func() { frames, bytes = ms.sender.Stats() })
	return frames, bytes
}

// EnableFEC turns on XOR forward error correction with block size k;
// receivers must set ReceiverConfig.FECBlock to the same k.
func (ms *MediaSender) EnableFEC(k int) error {
	err := ErrClosed
	ms.node.runner.Do(func() { err = ms.sender.SetFEC(k) })
	return err
}

// SetMaxFragment enables fragmentation of frames larger than n bytes;
// receivers must set ReceiverConfig.Reassemble.
func (ms *MediaSender) SetMaxFragment(n int) {
	ms.node.runner.Do(func() { ms.sender.SetMaxFragment(n) })
}

// RateAdvice summarizes receiver quality reports into a rate-adaptation
// recommendation (Hold with no feedback yet).
func (ms *MediaSender) RateAdvice() Advice {
	advice := Hold
	ms.node.runner.Do(func() { advice = ms.sender.RateAdvice() })
	return advice
}

// Reports returns the latest quality report from each receiver.
func (ms *MediaSender) Reports() []QualityReport {
	var out []QualityReport
	ms.node.runner.Do(func() { out = ms.sender.Reports() })
	return out
}

// MediaReceiver consumes one media stream with playout buffering.
type MediaReceiver struct {
	node   *Node
	recv   *rtx.Receiver
	syncFn func(Frame, time.Time) // set by Synchronize; loop-affine
}

// ReceiverConfig parameterizes OpenReceiver.
type ReceiverConfig struct {
	// Spec describes the stream (use the directory announcement).
	Spec StreamSpec
	// Mode selects fixed or adaptive playout; defaults to Adaptive.
	Mode PlayoutMode
	// PlayoutDelay is the fixed/initial playout delay.
	PlayoutDelay time.Duration
	// FECBlock enables FEC repair; must match the sender's EnableFEC k.
	FECBlock int
	// Reassemble enables fragmented-frame reassembly; required when the
	// sender uses SetMaxFragment.
	Reassemble bool
	// ReportEvery enables periodic quality reports back to the stream's
	// sender; zero disables them.
	ReportEvery time.Duration
	// MaxBuffered bounds the playout buffer in frames with a drop-oldest
	// policy, accounted in MediaStats.QueueDropped and the
	// media.queue_dropped counter. Zero means unbounded.
	MaxBuffered int
	// OnPlay receives frames at their playout points, from the node's
	// event loop.
	OnPlay func(f Frame, playedAt time.Time)
}

// OpenReceiver subscribes to a media stream.
func (n *Node) OpenReceiver(cfg ReceiverConfig) (*MediaReceiver, error) {
	mr := &MediaReceiver{node: n}
	ok := n.runner.Do(func() {
		env := loopEnv{node: n}
		mr.recv = rtx.NewReceiver(env, rtx.Config{
			Group:        n.cfg.Group,
			Stream:       cfg.Spec.ID,
			Spec:         cfg.Spec,
			Mode:         cfg.Mode,
			PlayoutDelay: cfg.PlayoutDelay,
			FECBlock:     cfg.FECBlock,
			Reassemble:   cfg.Reassemble,
			MaxBuffered:  cfg.MaxBuffered,
			Metrics:      n.reg,
			Flight:       n.flight,
			OnPlay: func(f Frame, at time.Time) {
				if mr.syncFn != nil {
					mr.syncFn(f, at)
				}
				if cfg.OnPlay != nil {
					cfg.OnPlay(f, at)
				}
			},
		})
		if cfg.ReportEvery > 0 {
			mr.recv.EnableReports(cfg.ReportEvery)
		}
		n.mux.Add(mr.recv)
	})
	if !ok {
		return nil, ErrClosed
	}
	return mr, nil
}

// Stats returns the receiver's playout statistics.
func (mr *MediaReceiver) Stats() MediaStats {
	var st MediaStats
	mr.node.runner.Do(func() { st = mr.recv.Stats() })
	return st
}

// SyncGroup keeps a master stream and its slaves lip-synced; see the
// msync package for the policy.
type SyncGroup struct {
	node *Node
	ctl  *msync.Controller
}

// syncTick drives the controller from the node's event loop.
type syncTick struct{ ctl *msync.Controller }

func (s syncTick) OnMessage(id.Node, *wire.Message) {}
func (s syncTick) OnTick(now time.Time)             { s.ctl.OnTick(now) }

// Synchronize binds slave receivers to a master (conventionally the audio
// stream): their playout timelines are steered to stay within maxSkew of
// the master's. Pass zero for the default 80ms bound.
func (n *Node) Synchronize(maxSkew time.Duration, master *MediaReceiver, slaves ...*MediaReceiver) (*SyncGroup, error) {
	sg := &SyncGroup{node: n}
	ok := n.runner.Do(func() {
		recvs := make([]*rtx.Receiver, len(slaves))
		for i, s := range slaves {
			recvs[i] = s.recv
		}
		sg.ctl = msync.New(msync.Config{
			MaxSkew: maxSkew,
			Metrics: n.reg,
			Flight:  n.flight,
		}, master.recv, recvs...)
		master.syncFn = sg.ctl.ObserveMaster
		for i, s := range slaves {
			i := i
			s.syncFn = func(f Frame, at time.Time) { sg.ctl.ObserveSlave(i, f, at) }
		}
		n.mux.Add(syncTick{sg.ctl})
	})
	if !ok {
		return nil, ErrClosed
	}
	return sg, nil
}

// Skew returns the latest measured skew of slave i relative to the
// master (positive: slave late), and whether both streams have played.
func (sg *SyncGroup) Skew(i int) (time.Duration, bool) {
	var d time.Duration
	var ok bool
	sg.node.runner.Do(func() { d, ok = sg.ctl.Skew(i) })
	return d, ok
}

// Corrections returns how many playout adjustments have been applied.
func (sg *SyncGroup) Corrections() uint64 {
	var c uint64
	sg.node.runner.Do(func() { c = sg.ctl.Corrections() })
	return c
}

// loopEnv adapts the node for engines constructed after startup; it is
// only used from inside the event loop.
type loopEnv struct{ node *Node }

var _ proto.Env = loopEnv{}

func (e loopEnv) Self() NodeID   { return e.node.cfg.Self }
func (e loopEnv) Now() time.Time { return time.Now() }
func (e loopEnv) Send(to NodeID, msg *wire.Message) {
	_ = e.node.ep.Send(to, msg)
}
