#!/bin/sh
# check.sh — the repository's tier-1 gate. Every change must pass this
# before it lands: vet, build, the short test suite under the race
# detector, and the short seeded chaos sweep. (-short skips the slow
# full-matrix sweeps and the benchmark gate; run `go test ./...` and
# scripts/bench_gate.sh for the long versions.) Run from the repo root:
#
#   ./scripts/check.sh
#
# The chaos sweep is deterministic: a failure prints the seed and a
# one-line repro command (e.g. `go test ./internal/chaos -run
# TestChaosSweep -chaos.seed=17`).
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

# Cross-compile the portable transport path: the batched UDP data plane
# is Linux-only behind build tags, and these builds catch any stray
# Linux-ism leaking into the portable files.
echo "==> GOOS=darwin go build ./..."
GOOS=darwin go build ./...

echo "==> GOOS=windows go build ./..."
GOOS=windows go build ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "==> short chaos sweep"
go test -short -count=1 ./internal/chaos

# Bounded slice of the T7 scalable-recovery experiment: one seed at
# n=256, flat vs suppressed, full delivery plus a real request reduction.
# The 1024-node acceptance run lives in the full (non-short) suite.
echo "==> T7 recovery smoke (n=256)"
go test -count=1 -run 'TestT7Smoke256' ./internal/experiments

# Bulk-dissemination smoke: scatter a 128KB object to 64 members through
# 5% correlated loss with one relay crashed mid-transfer; every survivor
# must reconstruct and the bottleneck member must stay under 25% of the
# flat multicast sender cost.
echo "==> T9 bulk dissemination smoke (n=64, relay crash)"
go test -count=1 -run 'TestT9Smoke64' ./internal/experiments

# Overload-robustness smoke: 32 members with one receiver stalled 2.5s
# under a 16-message stability window; sender occupancy must stay at the
# window, sends must hit backpressure, and the laggard must not be
# evicted under ThrottleToSlowest.
echo "==> T10 overload smoke (n=32, one receiver stalled)"
go test -count=1 -run 'TestT10Smoke32' ./internal/experiments

# Total-order safety smoke: a 16-member group with four sequencer shards
# must deliver every message in one identical global sequence at every
# member (the pipelined range + merge-stream path under light loss).
echo "==> total-order smoke (n=16, shards=4)"
go test -count=1 -run 'TestTotalOrderSmoke16' ./internal/experiments

echo "==> /metrics endpoint smoke test"
go test -count=1 -run 'TestMetricsEndpoint' .

# Self-healing membership smoke test: a 3-node group over live UDP where
# only the joiners hold the contact's static peer entry must converge via
# return-address learning and the view-body address exchange.
echo "==> self-healing membership smoke test"
go test -count=1 -run 'TestSelfConfiguringGroupOverUDP' .

# Self-organizing hierarchy smoke: 64 nodes across 8 latency sites form
# an agreed tree, lose an elected coordinator, and re-converge without it.
echo "==> auto-hier formation smoke (n=64)"
go test -count=1 -run 'TestAutoHierSmoke64' ./internal/hier

echo "All checks passed."
