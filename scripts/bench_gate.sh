#!/usr/bin/env bash
# Benchmark-regression gate: re-runs the data-plane microbenchmarks
# (including the UDP batch/fallback throughput pair, the netsim
# node-step cost and the sharded total-order multicast path) plus the
# table benchmarks (T2b adds the sustained sharded total-order
# throughput metric, gated higher-is-better; T10 adds the
# sender-history-peak bounded-memory metric), writes the results to
# BENCH_10.json, and fails on a regression against the checked-in
# bench_baseline.json (time and allocations for the microbenchmarks,
# deterministic domain metrics for the tables).
#
# After an intentional performance change, refresh the baseline with:
#   BENCH_BASELINE_UPDATE=1 go test -run 'TestBenchGate$' -count=1 .
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_OUT="${BENCH_OUT:-BENCH_10.json}" \
	go test -run 'TestBenchGate$' -count=1 -v . "$@"
